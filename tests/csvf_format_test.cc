#include "csvf/csv_format.h"

#include <gtest/gtest.h>

#include "core/format_adapter.h"
#include "io/file_io.h"
#include "mseed/generator.h"
#include "test_util.h"

namespace dex::csvf {
namespace {

mseed::RecordData MakeRecord(int64_t start_ms, std::vector<int32_t> samples) {
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = start_ms;
  rec.sample_rate_hz = 2.0;
  rec.samples = std::move(samples);
  return rec;
}

TEST(CsvFormatTest, SerializeParseRoundtrip) {
  const std::vector<mseed::RecordData> records = {
      MakeRecord(0, {1, -2, 3}), MakeRecord(5000, {100, 200})};
  const std::string image = SerializeCsvFile(records);
  auto parsed = ParseCsvFile(image);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].header.station, "ISK");
  EXPECT_EQ((*parsed)[0].samples, (std::vector<int32_t>{1, -2, 3}));
  EXPECT_EQ((*parsed)[1].header.start_time_ms, 5000);
  EXPECT_EQ((*parsed)[1].samples, (std::vector<int32_t>{100, 200}));
  EXPECT_DOUBLE_EQ((*parsed)[1].header.sample_rate_hz, 2.0);
}

TEST(CsvFormatTest, HeaderLineIsHumanReadable) {
  const std::string image = SerializeCsvFile({MakeRecord(0, {7})});
  EXPECT_EQ(image.substr(0, 1), "#");
  EXPECT_NE(image.find("station=ISK"), std::string::npos);
  EXPECT_NE(image.find("start=1970-01-01T00:00:00.000"), std::string::npos);
  EXPECT_NE(image.find("samples=1"), std::string::npos);
}

TEST(CsvFormatTest, ScanExtractsMetadataWithoutSamples) {
  const std::string dir = "/tmp/dex_csvf_scan";
  (void)RemoveDirRecursive(dir);
  const std::string path = dir + "/a" + std::string(kCsvExtension);
  ASSERT_TRUE(WriteCsvFile(path, {MakeRecord(0, {1, 2, 3, 4})}).ok());
  auto scan = ScanCsvFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->files.size(), 1u);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->files[0].station, "ISK");
  EXPECT_EQ(scan->records[0].num_samples, 4u);
  EXPECT_EQ(scan->records[0].end_time_ms, 1500);  // 3 intervals at 2 Hz
  (void)RemoveDirRecursive(dir);
}

TEST(CsvFormatTest, CorruptionDetected) {
  EXPECT_TRUE(ParseCsvFile("42\n").status().IsCorruption());  // sample first
  const std::string good = SerializeCsvFile({MakeRecord(0, {1, 2, 3})});
  // Truncated: fewer samples than declared.
  EXPECT_TRUE(ParseCsvFile(good.substr(0, good.size() - 2)).status().IsCorruption());
  // Garbage sample line.
  std::string bad = good;
  bad.replace(bad.size() - 2, 1, "x");
  EXPECT_TRUE(ParseCsvFile(bad).status().IsCorruption());
  // Unknown metadata key.
  EXPECT_TRUE(
      ParseCsvFile("# bogus=1 start=1970-01-01 rate=1 samples=0\n").status()
          .IsCorruption());
  // Missing required keys.
  EXPECT_TRUE(ParseCsvFile("# station=X\n").status().IsCorruption());
  // Extra samples beyond the declared count.
  std::string extra = good;
  extra += "9\n";
  EXPECT_TRUE(ParseCsvFile(extra).status().IsCorruption());
}

TEST(CsvFormatTest, EmptyFileYieldsNothing) {
  auto parsed = ParseCsvFile("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(CsvFormatTest, ConvertedRepositoryIsEquivalent) {
  const std::string mseed_dir = "/tmp/dex_csvf_convert_src";
  const std::string csv_dir = "/tmp/dex_csvf_convert_dst";
  (void)RemoveDirRecursive(mseed_dir);
  (void)RemoveDirRecursive(csv_dir);
  auto repo =
      mseed::GenerateRepository(mseed_dir, dex::testing::TinyRepoOptions());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(ConvertMseedRepository(mseed_dir, csv_dir).ok());

  auto mseed_scan = MseedAdapter().ScanRepository(mseed_dir);
  auto csv_scan = CsvAdapter().ScanRepository(csv_dir);
  ASSERT_TRUE(mseed_scan.ok());
  ASSERT_TRUE(csv_scan.ok()) << csv_scan.status().ToString();
  EXPECT_EQ(csv_scan->files.size(), mseed_scan->files.size());
  EXPECT_EQ(csv_scan->records.size(), mseed_scan->records.size());

  // Sample-exact equivalence of one file.
  auto mseed_records = mseed::Reader::ReadAllRecords(mseed_scan->files[0].uri);
  auto csv_records = ReadCsvFile(csv_scan->files[0].uri);
  ASSERT_TRUE(mseed_records.ok());
  ASSERT_TRUE(csv_records.ok());
  ASSERT_EQ(csv_records->size(), mseed_records->size());
  for (size_t i = 0; i < csv_records->size(); ++i) {
    EXPECT_EQ((*csv_records)[i].samples, (*mseed_records)[i].samples);
    EXPECT_EQ((*csv_records)[i].header.start_time_ms,
              (*mseed_records)[i].header.start_time_ms);
  }
  (void)RemoveDirRecursive(mseed_dir);
  (void)RemoveDirRecursive(csv_dir);
}

}  // namespace
}  // namespace dex::csvf

namespace dex {
namespace {

TEST(FormatAdapterTest, DetectsMseed) {
  testing::ScopedRepo repo("adapter_detect", testing::TinyRepoOptions());
  auto format = DetectFormat(repo.root());
  ASSERT_TRUE(format.ok());
  EXPECT_EQ((*format)->name(), "mseed");
}

TEST(FormatAdapterTest, DetectsCsv) {
  const std::string dir = "/tmp/dex_adapter_detect_csv";
  (void)RemoveDirRecursive(dir);
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 0;
  rec.sample_rate_hz = 1.0;
  rec.samples = {1, 2};
  ASSERT_TRUE(csvf::WriteCsvFile(
                  dir + "/x" + std::string(csvf::kCsvExtension), {rec})
                  .ok());
  auto format = DetectFormat(dir);
  ASSERT_TRUE(format.ok()) << format.status().ToString();
  EXPECT_EQ((*format)->name(), "tscsv");
  (void)RemoveDirRecursive(dir);
}

TEST(FormatAdapterTest, NoFormatIsNotFound) {
  const std::string dir = "/tmp/dex_adapter_detect_none";
  (void)RemoveDirRecursive(dir);
  ASSERT_TRUE(WriteStringToFile(dir + "/readme.txt", "nothing here").ok());
  EXPECT_TRUE(DetectFormat(dir).status().IsNotFound());
  (void)RemoveDirRecursive(dir);
}

/// The generalization property: the same exploration gives identical answers
/// over the same data in either format, lazily or eagerly.
TEST(FormatAdapterTest, CrossFormatQueryEquivalence) {
  const std::string mseed_dir = "/tmp/dex_adapter_equiv_mseed";
  const std::string csv_dir = "/tmp/dex_adapter_equiv_csv";
  (void)RemoveDirRecursive(mseed_dir);
  (void)RemoveDirRecursive(csv_dir);
  auto repo =
      mseed::GenerateRepository(mseed_dir, testing::TinyRepoOptions());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(csvf::ConvertMseedRepository(mseed_dir, csv_dir).ok());

  auto mseed_db = Database::Open(mseed_dir, {});
  auto csv_db = Database::Open(csv_dir, {});
  ASSERT_TRUE(mseed_db.ok());
  ASSERT_TRUE(csv_db.ok()) << csv_db.status().ToString();

  const char* queries[] = {
      "SELECT COUNT(*) FROM F",
      "SELECT COUNT(*) FROM R WHERE R.record_id = 1",
      "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean FROM F "
      "JOIN D ON F.uri = D.uri WHERE F.station = 'ISK'",
      "SELECT F.channel, MAX(D.sample_value) AS peak FROM F "
      "JOIN D ON F.uri = D.uri GROUP BY F.channel ORDER BY F.channel",
  };
  for (const char* sql : queries) {
    auto a = (*mseed_db)->Query(sql);
    auto b = (*csv_db)->Query(sql);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString() << "\n" << sql;
    // URIs differ between the repositories; compare only URI-free outputs.
    EXPECT_EQ(testing::CanonicalRows(*a->table),
              testing::CanonicalRows(*b->table))
        << sql;
  }
  (void)RemoveDirRecursive(mseed_dir);
  (void)RemoveDirRecursive(csv_dir);
}

}  // namespace
}  // namespace dex
