#include "storage/column.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

TEST(StringDictTest, InternDeduplicates) {
  StringDict dict;
  EXPECT_EQ(dict.Intern("a"), 0);
  EXPECT_EQ(dict.Intern("b"), 1);
  EXPECT_EQ(dict.Intern("a"), 0);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.At(1), "b");
  EXPECT_EQ(dict.Find("b"), 1);
  EXPECT_EQ(dict.Find("zzz"), -1);
}

TEST(ColumnTest, Int64Appends) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  col.AppendInt64(-5);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.GetInt64(0), 1);
  EXPECT_EQ(col.GetInt64(1), -5);
  EXPECT_EQ(col.GetValue(1).int64(), -5);
}

TEST(ColumnTest, TimestampSharesIntBuffer) {
  Column col(DataType::kTimestamp);
  col.AppendInt64(1000);
  EXPECT_EQ(col.GetValue(0).type(), DataType::kTimestamp);
  EXPECT_DOUBLE_EQ(col.GetNumeric(0), 1000.0);
}

TEST(ColumnTest, DoubleAppends) {
  Column col(DataType::kDouble);
  col.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(col.GetDouble(0), 2.5);
  EXPECT_DOUBLE_EQ(col.GetNumeric(0), 2.5);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column col(DataType::kString);
  col.AppendString("ISK");
  col.AppendString("ANK");
  col.AppendString("ISK");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetString(0), "ISK");
  EXPECT_EQ(col.GetString(2), "ISK");
  EXPECT_EQ(col.GetStringCode(0), col.GetStringCode(2));
  EXPECT_NE(col.GetStringCode(0), col.GetStringCode(1));
  EXPECT_EQ(col.dict()->size(), 2u);
}

TEST(ColumnTest, AppendValueChecksTypes) {
  Column col(DataType::kString);
  EXPECT_TRUE(col.AppendValue(Value::String("x")).ok());
  EXPECT_FALSE(col.AppendValue(Value::Int64(1)).ok());
  EXPECT_FALSE(col.AppendValue(Value::Null()).ok());

  Column ints(DataType::kInt64);
  EXPECT_TRUE(ints.AppendValue(Value::Int64(1)).ok());
  EXPECT_FALSE(ints.AppendValue(Value::Double(1.5)).ok());

  Column dbls(DataType::kDouble);
  EXPECT_TRUE(dbls.AppendValue(Value::Int64(2)).ok());  // widening ok
  EXPECT_DOUBLE_EQ(dbls.GetDouble(0), 2.0);
}

TEST(ColumnTest, AppendRangeSharesDictionary) {
  Column src(DataType::kString);
  for (int i = 0; i < 100; ++i) src.AppendString(i % 2 ? "a" : "b");
  Column dst(DataType::kString);
  dst.AppendRange(src, 10, 20);
  ASSERT_EQ(dst.size(), 20u);
  EXPECT_EQ(dst.GetString(0), "b");  // row 10
  EXPECT_EQ(dst.dict(), src.dict()) << "slice should share the dictionary";
}

TEST(ColumnTest, CopyOnWritePreservesSharedDict) {
  Column src(DataType::kString);
  src.AppendString("x");
  Column dst(DataType::kString);
  dst.AppendRange(src, 0, 1);
  ASSERT_EQ(dst.dict(), src.dict());
  // Appending to dst must not mutate the shared dictionary.
  dst.AppendString("fresh");
  EXPECT_NE(dst.dict(), src.dict());
  EXPECT_EQ(src.dict()->size(), 1u);
  EXPECT_EQ(dst.GetString(0), "x");
  EXPECT_EQ(dst.GetString(1), "fresh");
}

TEST(ColumnTest, AppendGather) {
  Column src(DataType::kInt64);
  for (int i = 0; i < 10; ++i) src.AppendInt64(i * 10);
  Column dst(DataType::kInt64);
  dst.AppendGather(src, {9, 0, 5});
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.GetInt64(0), 90);
  EXPECT_EQ(dst.GetInt64(1), 0);
  EXPECT_EQ(dst.GetInt64(2), 50);
}

TEST(ColumnTest, AppendGatherStringsAcrossDicts) {
  Column src(DataType::kString);
  src.AppendString("p");
  src.AppendString("q");
  Column dst(DataType::kString);
  dst.AppendString("r");  // dst now owns a different dict
  dst.AppendGather(src, {1, 0});
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.GetString(1), "q");
  EXPECT_EQ(dst.GetString(2), "p");
}

TEST(ColumnTest, AppendFromAdoptsDictWhenEmpty) {
  Column src(DataType::kString);
  src.AppendString("only");
  Column dst(DataType::kString);
  dst.AppendFrom(src, 0);
  EXPECT_EQ(dst.dict(), src.dict());
  EXPECT_EQ(dst.GetString(0), "only");
}

TEST(ColumnTest, ByteSizeScalesWithRows) {
  Column col(DataType::kInt64);
  const uint64_t empty = col.ByteSize();
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i);
  EXPECT_EQ(col.ByteSize() - empty, 8000u);
}

TEST(ColumnTest, StringByteSizeCountsCodesAndDict) {
  Column col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString("same");
  // 100 codes * 4B plus one dictionary entry.
  EXPECT_GE(col.ByteSize(), 400u);
  EXPECT_LT(col.ByteSize(), 600u);
}

TEST(ColumnTest, ClearResets) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  col.AppendString("b");
  EXPECT_EQ(col.GetString(0), "b");
}

}  // namespace
}  // namespace dex
