#include "mseed/record.h"

#include <gtest/gtest.h>

namespace dex::mseed {
namespace {

RecordHeader MakeHeader() {
  RecordHeader h;
  h.network = "OR";
  h.station = "ISK";
  h.channel = "BHE";
  h.location = "00";
  h.start_time_ms = 1263254400000LL;  // 2010-01-12
  h.sample_rate_hz = 40.0;
  h.num_samples = 5000;
  h.data_bytes = 1344;
  return h;
}

TEST(RecordHeaderTest, SerializedSizeIsFixed) {
  std::string buf;
  MakeHeader().AppendTo(&buf);
  EXPECT_EQ(buf.size(), RecordHeader::kSerializedBytes);
}

TEST(RecordHeaderTest, Roundtrip) {
  std::string buf;
  const RecordHeader h = MakeHeader();
  h.AppendTo(&buf);
  auto parsed = RecordHeader::Parse(buf, 0);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->network, "OR");
  EXPECT_EQ(parsed->station, "ISK");
  EXPECT_EQ(parsed->channel, "BHE");
  EXPECT_EQ(parsed->location, "00");
  EXPECT_EQ(parsed->start_time_ms, h.start_time_ms);
  EXPECT_DOUBLE_EQ(parsed->sample_rate_hz, 40.0);
  EXPECT_EQ(parsed->num_samples, 5000u);
  EXPECT_EQ(parsed->data_bytes, 1344u);
}

TEST(RecordHeaderTest, RoundtripAtOffset) {
  std::string buf(100, 'x');
  MakeHeader().AppendTo(&buf);
  auto parsed = RecordHeader::Parse(buf, 100);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->station, "ISK");
}

TEST(RecordHeaderTest, MaxLengthCodesSurvive) {
  RecordHeader h = MakeHeader();
  h.station = "ABCDEFGH";  // exactly 8 chars, no terminator in the field
  std::string buf;
  h.AppendTo(&buf);
  auto parsed = RecordHeader::Parse(buf, 0);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->station, "ABCDEFGH");
}

TEST(RecordHeaderTest, TruncatedBufferRejected) {
  std::string buf;
  MakeHeader().AppendTo(&buf);
  buf.resize(32);
  EXPECT_TRUE(RecordHeader::Parse(buf, 0).status().IsCorruption());
}

TEST(RecordHeaderTest, BadMagicRejected) {
  std::string buf;
  MakeHeader().AppendTo(&buf);
  buf[0] = 'X';
  EXPECT_TRUE(RecordHeader::Parse(buf, 0).status().IsCorruption());
}

TEST(RecordHeaderTest, ImplausibleSampleRateRejected) {
  RecordHeader h = MakeHeader();
  h.sample_rate_hz = -1.0;
  std::string buf;
  h.AppendTo(&buf);
  EXPECT_TRUE(RecordHeader::Parse(buf, 0).status().IsCorruption());
}

TEST(RecordHeaderTest, EndTimeFromRateAndCount) {
  RecordHeader h = MakeHeader();
  h.start_time_ms = 1000;
  h.sample_rate_hz = 2.0;  // 500 ms between samples
  h.num_samples = 11;
  EXPECT_EQ(h.EndTimeMs(), 1000 + 10 * 500);
}

TEST(RecordHeaderTest, EndTimeDegenerateCases) {
  RecordHeader h = MakeHeader();
  h.num_samples = 0;
  EXPECT_EQ(h.EndTimeMs(), h.start_time_ms);
  h.num_samples = 10;
  h.sample_rate_hz = 0.0;
  EXPECT_EQ(h.EndTimeMs(), h.start_time_ms);
}

}  // namespace
}  // namespace dex::mseed
