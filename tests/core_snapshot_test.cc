// Tests for the "instant-on" metadata snapshot: serialization roundtrip,
// corruption detection, reconciliation against a changed repository, and the
// Database-level integration.

#include "core/metadata_snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/database.h"
#include "mseed/writer.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

mseed::ScanResult ScanOf(const std::string& root) {
  auto scan = MseedAdapter().ScanRepository(root);
  EXPECT_TRUE(scan.ok());
  return scan.ValueOr({});
}

TEST(SnapshotTest, SaveLoadRoundtrip) {
  ScopedRepo repo("snapshot_roundtrip", TinyRepoOptions());
  const mseed::ScanResult scan = ScanOf(repo.root());
  const std::string path = repo.root() + "/meta.snap";
  ASSERT_TRUE(SaveSnapshot(scan, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->files.size(), scan.files.size());
  ASSERT_EQ(loaded->records.size(), scan.records.size());
  EXPECT_EQ(loaded->total_bytes, scan.total_bytes);
  for (size_t i = 0; i < scan.files.size(); ++i) {
    EXPECT_EQ(loaded->files[i].uri, scan.files[i].uri);
    EXPECT_EQ(loaded->files[i].station, scan.files[i].station);
    EXPECT_EQ(loaded->files[i].mtime_ms, scan.files[i].mtime_ms);
    EXPECT_EQ(loaded->files[i].size_bytes, scan.files[i].size_bytes);
  }
  for (size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(loaded->records[i].uri, scan.records[i].uri);
    EXPECT_EQ(loaded->records[i].start_time_ms, scan.records[i].start_time_ms);
    EXPECT_EQ(loaded->records[i].num_samples, scan.records[i].num_samples);
    EXPECT_EQ(loaded->records[i].data_offset, scan.records[i].data_offset);
  }
}

TEST(SnapshotTest, EmptyScanRoundtrips) {
  const std::string path = "/tmp/dex_snapshot_empty.snap";
  ASSERT_TRUE(SaveSnapshot(mseed::ScanResult{}, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->files.empty());
  EXPECT_TRUE(loaded->records.empty());
  (void)RemoveDirRecursive(path);
}

TEST(SnapshotTest, CorruptionDetected) {
  ScopedRepo repo("snapshot_corrupt", TinyRepoOptions());
  const std::string path = repo.root() + "/meta.snap";
  ASSERT_TRUE(SaveSnapshot(ScanOf(repo.root()), path).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  // Bad magic.
  std::string bad = data;
  bad[0] = 'X';
  ASSERT_TRUE(WriteStringToFile(path, bad).ok());
  EXPECT_TRUE(LoadSnapshot(path).status().IsCorruption());
  // Truncation.
  ASSERT_TRUE(WriteStringToFile(path, data.substr(0, data.size() / 2)).ok());
  EXPECT_TRUE(LoadSnapshot(path).status().IsCorruption());
  // Trailing garbage.
  ASSERT_TRUE(WriteStringToFile(path, data + "zzz").ok());
  EXPECT_TRUE(LoadSnapshot(path).status().IsCorruption());
}

TEST(SnapshotTest, BitFlipAnywhereIsDetected) {
  ScopedRepo repo("snapshot_bitflip", TinyRepoOptions());
  const std::string path = repo.root() + "/meta.snap";
  ASSERT_TRUE(SaveSnapshot(ScanOf(repo.root()), path).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  ASSERT_TRUE(LoadSnapshot(path).ok());
  // Flip one bit at a sweep of offsets covering the whole payload including
  // the trailing checksum itself. Every single flip must be rejected — this
  // is exactly what the per-field length checks alone could NOT guarantee.
  const size_t step = std::max<size_t>(1, data.size() / 97);
  for (size_t off = 0; off < data.size(); off += step) {
    std::string bad = data;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    ASSERT_TRUE(WriteStringToFile(path, bad).ok());
    EXPECT_TRUE(LoadSnapshot(path).status().IsCorruption())
        << "bit flip at offset " << off << " was not detected";
  }
}

TEST(SnapshotTest, TruncationAtEveryLengthIsDetected) {
  ScopedRepo repo("snapshot_trunc", TinyRepoOptions());
  const std::string path = repo.root() + "/meta.snap";
  ASSERT_TRUE(SaveSnapshot(ScanOf(repo.root()), path).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  const size_t step = std::max<size_t>(1, data.size() / 97);
  for (size_t len = 0; len < data.size(); len += step) {
    ASSERT_TRUE(WriteStringToFile(path, data.substr(0, len)).ok());
    EXPECT_FALSE(LoadSnapshot(path).ok())
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST(SnapshotTest, V1SnapshotRejectedAsStale) {
  // A previous-format snapshot (magic DXSNAP01, no trailing checksum) must
  // be rejected — Database::Open then falls back to a clean full rescan and
  // rewrites the snapshot in the current format.
  ScopedRepo repo("snapshot_v1", TinyRepoOptions());
  const std::string path = repo.root() + "/meta.snap";
  ASSERT_TRUE(SaveSnapshot(ScanOf(repo.root()), path).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  data[7] = '1';  // "DXSNAP02" -> "DXSNAP01"
  ASSERT_TRUE(WriteStringToFile(path, data).ok());
  EXPECT_TRUE(LoadSnapshot(path).status().IsCorruption());

  DatabaseOptions opts;
  opts.metadata_snapshot_path = path;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->open_stats().snapshot_files_reused, 0u);  // full rescan
  auto reloaded = LoadSnapshot(path);  // rewritten in the v2 format
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->files.size(), (*db)->open_stats().num_files);
}

TEST(SnapshotTest, ReconcileReusesUnchangedFiles) {
  ScopedRepo repo("snapshot_reconcile", TinyRepoOptions());
  const mseed::ScanResult baseline = ScanOf(repo.root());
  MseedAdapter format;
  ReconcileStats stats;
  auto current = ReconcileScan(repo.root(), &format, baseline, &stats);
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  EXPECT_EQ(stats.files_reused, baseline.files.size());
  EXPECT_EQ(stats.files_rescanned, 0u);
  EXPECT_EQ(stats.files_dropped, 0u);
  EXPECT_EQ(current->records.size(), baseline.records.size());
}

TEST(SnapshotTest, ReconcilePicksUpNewAndRemovedFiles) {
  ScopedRepo repo("snapshot_churn", TinyRepoOptions());
  const mseed::ScanResult baseline = ScanOf(repo.root());
  // Remove one file, add another.
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(RemoveDirRecursive((*files)[0]).ok());
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = "ADD";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 0;
  rec.sample_rate_hz = 1.0;
  rec.samples = {1, 2, 3};
  ASSERT_TRUE(
      mseed::WriteFile(repo.root() + "/ADD/new.mseed", {rec}).ok());

  MseedAdapter format;
  ReconcileStats stats;
  auto current = ReconcileScan(repo.root(), &format, baseline, &stats);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(stats.files_reused, baseline.files.size() - 1);
  EXPECT_EQ(stats.files_rescanned, 1u);  // the new file
  EXPECT_EQ(stats.files_dropped, 1u);
  EXPECT_EQ(current->files.size(), baseline.files.size());
}

TEST(SnapshotTest, DatabaseInstantOnReusesSnapshot) {
  ScopedRepo repo("snapshot_db", TinyRepoOptions());
  DatabaseOptions opts;
  opts.metadata_snapshot_path = repo.root() + "/.dex_meta.snap";

  // First open: full scan, snapshot written.
  auto first = Database::Open(repo.root(), opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->open_stats().snapshot_files_reused, 0u);
  EXPECT_TRUE(FileExists(opts.metadata_snapshot_path));
  const auto count1 = (*first)->Query("SELECT COUNT(*) FROM R");
  ASSERT_TRUE(count1.ok());

  // Second open: everything reused, identical metadata.
  auto second = Database::Open(repo.root(), opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->open_stats().snapshot_files_reused,
            (*second)->open_stats().num_files);
  const auto count2 = (*second)->Query("SELECT COUNT(*) FROM R");
  ASSERT_TRUE(count2.ok());
  EXPECT_EQ(count1->table->GetValue(0, 0).int64(),
            count2->table->GetValue(0, 0).int64());
  // Actual data still mounts correctly from reused metadata.
  auto data = (*second)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_GT(data->table->GetValue(0, 0).int64(), 0);
}

TEST(SnapshotTest, DatabaseFallsBackOnCorruptSnapshot) {
  ScopedRepo repo("snapshot_db_corrupt", TinyRepoOptions());
  DatabaseOptions opts;
  opts.metadata_snapshot_path = repo.root() + "/.dex_meta.snap";
  ASSERT_TRUE(WriteStringToFile(opts.metadata_snapshot_path, "garbage").ok());
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->open_stats().snapshot_files_reused, 0u);
  EXPECT_EQ((*db)->open_stats().num_files, 8u);
  // The bad snapshot was replaced with a valid one.
  EXPECT_TRUE(LoadSnapshot(opts.metadata_snapshot_path).ok());
}

TEST(SnapshotTest, DatabaseSnapshotSeesChangedFile) {
  ScopedRepo repo("snapshot_db_changed", TinyRepoOptions());
  DatabaseOptions opts;
  opts.metadata_snapshot_path = repo.root() + "/.dex_meta.snap";
  {
    auto warm = Database::Open(repo.root(), opts);
    ASSERT_TRUE(warm.ok());
  }
  // Rewrite one file with a single 5-sample record.
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 0;
  rec.sample_rate_hz = 1.0;
  rec.samples = {1, 2, 3, 4, 5};
  ASSERT_TRUE(mseed::WriteFile((*files)[0], {rec}).ok());

  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->open_stats().snapshot_files_reused,
            (*db)->open_stats().num_files - 1);
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM R WHERE R.n_samples = 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table->GetValue(0, 0).int64(), 1);
}

}  // namespace
}  // namespace dex
