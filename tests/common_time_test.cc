#include "common/time_utils.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

TEST(TimeTest, EpochIsZero) {
  auto r = ParseIso8601("1970-01-01T00:00:00.000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0);
}

TEST(TimeTest, DateOnlyParses) {
  auto r = ParseIso8601("1970-01-02");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, kMillisPerDay);
}

TEST(TimeTest, KnownTimestamp) {
  // 2010-01-12T22:15:00 UTC == 1263334500 seconds since the epoch.
  auto r = ParseIso8601("2010-01-12T22:15:00.000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1263334500000LL);
}

TEST(TimeTest, MillisecondsParsed) {
  auto r = ParseIso8601("1970-01-01T00:00:00.123");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 123);
}

TEST(TimeTest, SecondsWithoutMillis) {
  auto r = ParseIso8601("1970-01-01T00:01:05");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 65 * 1000);
}

TEST(TimeTest, SpaceSeparatorAccepted) {
  auto r = ParseIso8601("1970-01-01 00:00:01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1000);
}

TEST(TimeTest, LeapYearFebruary29Valid) {
  EXPECT_TRUE(ParseIso8601("2008-02-29").ok());
  EXPECT_TRUE(ParseIso8601("2000-02-29").ok());  // divisible by 400
}

TEST(TimeTest, NonLeapYearFebruary29Invalid) {
  EXPECT_FALSE(ParseIso8601("2010-02-29").ok());
  EXPECT_FALSE(ParseIso8601("1900-02-29").ok());  // divisible by 100, not 400
}

TEST(TimeTest, RejectsMalformed) {
  EXPECT_FALSE(ParseIso8601("").ok());
  EXPECT_FALSE(ParseIso8601("2010").ok());
  EXPECT_FALSE(ParseIso8601("2010-13-01").ok());
  EXPECT_FALSE(ParseIso8601("2010-00-10").ok());
  EXPECT_FALSE(ParseIso8601("2010-01-32").ok());
  EXPECT_FALSE(ParseIso8601("2010-01-12T24:00:00").ok());
  EXPECT_FALSE(ParseIso8601("2010-01-12T23:60:00").ok());
  EXPECT_FALSE(ParseIso8601("2010-01-12T23:00:61").ok());
  EXPECT_FALSE(ParseIso8601("2010/01/12").ok());
  EXPECT_FALSE(ParseIso8601("2010-01-12T10:00:00.1").ok());   // bad millis width
  EXPECT_FALSE(ParseIso8601("2010-01-12T10:00:00.1234").ok());
  EXPECT_FALSE(ParseIso8601("abcd-ef-gh").ok());
}

TEST(TimeTest, FormatKnownValue) {
  EXPECT_EQ(FormatIso8601(0), "1970-01-01T00:00:00.000");
  EXPECT_EQ(FormatIso8601(1263334500000LL), "2010-01-12T22:15:00.000");
}

TEST(TimeTest, FormatNegativeMillis) {
  EXPECT_EQ(FormatIso8601(-1000), "1969-12-31T23:59:59.000");
}

TEST(TimeTest, LooksLikeIso8601) {
  EXPECT_TRUE(LooksLikeIso8601("2010-01-12"));
  EXPECT_TRUE(LooksLikeIso8601("2010-01-12T22:15:00.000"));
  EXPECT_FALSE(LooksLikeIso8601("ISK"));
  EXPECT_FALSE(LooksLikeIso8601("12345"));
  EXPECT_FALSE(LooksLikeIso8601("2010-0a-12"));
}

/// Property: parse(format(t)) == t across a broad sweep of instants.
class TimeRoundtrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(TimeRoundtrip, FormatThenParseIsIdentity) {
  const int64_t millis = GetParam();
  const std::string text = FormatIso8601(millis);
  auto parsed = ParseIso8601(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(*parsed, millis) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimeRoundtrip,
    ::testing::Values(0LL, 1LL, 999LL, 1000LL, kMillisPerDay - 1, kMillisPerDay,
                      1263334500000LL,            // the paper's Query 1 instant
                      951827696789LL,             // 2000-02-29 leap day
                      1262304000000LL,            // 2010-01-01
                      4102444799999LL,            // 2099-12-31T23:59:59.999
                      253402300799999LL));        // 9999-12-31T23:59:59.999

}  // namespace
}  // namespace dex
