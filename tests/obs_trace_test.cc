#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/chrome_trace.h"

namespace dex::obs {
namespace {

/// Enables tracing for one test and leaves the global tracer clean.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }
};

const Span* FindByName(const std::vector<Span>& spans, const std::string& name) {
  for (const Span& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledSpansAreInactiveAndRecordNothing) {
  Tracer::Global().set_enabled(false);
  {
    TraceSpan span("ignored", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    span.AddArg("key", std::string("value"));  // must be a safe no-op
    Tracer::Instant("ignored_instant", "test");
  }
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST_F(TraceTest, NestedSpansLinkParentAutomatically) {
  {
    TraceSpan outer("outer", "test");
    ASSERT_TRUE(outer.active());
    EXPECT_EQ(Tracer::CurrentSpanId(), outer.id());
    {
      TraceSpan inner("inner", "test");
      ASSERT_TRUE(inner.active());
      EXPECT_EQ(Tracer::CurrentSpanId(), inner.id());
    }
    EXPECT_EQ(Tracer::CurrentSpanId(), outer.id());
  }
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);

  const auto spans = Tracer::Global().Drain();
  ASSERT_EQ(spans.size(), 2u);
  const Span* outer = FindByName(spans, "outer");
  const Span* inner = FindByName(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->id);
  // Order keys are allocated at open, so the outer span drains first even
  // though it closed last.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
}

TEST_F(TraceTest, ArgsAndInstantsAreRecorded) {
  {
    TraceSpan span("op", "test");
    span.AddArg("uri", std::string("repo/file.mseed"));
    span.AddArg("rows", static_cast<uint64_t>(42));
    Tracer::Instant("retry", "test", {{"attempt", "2"}});
  }
  const auto spans = Tracer::Global().Drain();
  ASSERT_EQ(spans.size(), 2u);
  const Span* op = FindByName(spans, "op");
  const Span* retry = FindByName(spans, "retry");
  ASSERT_NE(op, nullptr);
  ASSERT_NE(retry, nullptr);
  ASSERT_EQ(op->args.size(), 2u);
  EXPECT_EQ(op->args[0].key, "uri");
  EXPECT_EQ(op->args[0].value, "repo/file.mseed");
  EXPECT_EQ(op->args[1].value, "42");
  EXPECT_TRUE(retry->instant);
  EXPECT_EQ(retry->parent_id, op->id);  // parented while `op` was open
  ASSERT_EQ(retry->args.size(), 1u);
  EXPECT_EQ(retry->args[0].value, "2");
}

TEST_F(TraceTest, TaskScopeImposesSpawnOrderOnDrain) {
  // Simulate a coordinator spawning two tasks: orders are allocated at
  // spawn time, but the "tasks" here run in the opposite order. The drain
  // must still come back in spawn order.
  const uint64_t order_a = Tracer::AllocOrder();
  const uint64_t order_b = Tracer::AllocOrder();
  ASSERT_LT(order_a, order_b);

  {
    TaskTraceScope scope(order_b);
    TraceSpan span("task_b", "test");
  }
  {
    TaskTraceScope scope(order_a);
    { TraceSpan first("task_a_first", "test"); }
    { TraceSpan second("task_a_second", "test"); }
  }

  const auto spans = Tracer::Global().Drain();
  ASSERT_EQ(spans.size(), 3u);
  // Task A's spans (earlier order) first, in their sub-sequence; then task B.
  EXPECT_EQ(spans[0].name, "task_a_first");
  EXPECT_EQ(spans[1].name, "task_a_second");
  EXPECT_EQ(spans[2].name, "task_b");
  EXPECT_LT(spans[0].sub, spans[1].sub);
}

TEST_F(TraceTest, SimChargeAccruesToOpenSpan) {
  const uint64_t before = ThreadSimCharged();
  {
    TraceSpan span("io", "test");
    AddSimCharge(1500);
    AddSimCharge(500);
  }
  EXPECT_EQ(ThreadSimCharged(), before + 2000);
  const auto spans = Tracer::Global().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].sim_dur_nanos, 2000u);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormedAndNamesLanes) {
  {
    TraceSpan span("query", "query");
    span.AddArg("sql", std::string("SELECT \"x\" FROM t"));
    AddSimCharge(1000);
    Tracer::Instant("cache_hit", "cache");
  }
  const auto spans = Tracer::Global().Drain();
  const std::string json = ChromeTraceJson(spans);
  // Spot-check structure: the traceEvents array, a complete event, an
  // instant, thread-name metadata, and escaped quotes in args.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("simulated disk"), std::string::npos);
  EXPECT_NE(json.find("SELECT \\\"x\\\" FROM t"), std::string::npos);
}

TEST_F(TraceTest, DrainIsDestructiveAndDroppedStartsAtZero) {
  { TraceSpan span("once", "test"); }
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

}  // namespace
}  // namespace dex::obs
