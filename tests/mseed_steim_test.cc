#include "mseed/steim.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>

#include "common/random.h"
#include "mseed/generator.h"

namespace dex::mseed {
namespace {

void ExpectRoundtrip(const std::vector<int32_t>& samples) {
  const std::string encoded = Steim1::Encode(samples);
  if (samples.empty()) {
    EXPECT_TRUE(encoded.empty());
    return;
  }
  EXPECT_EQ(encoded.size() % Steim1::kFrameBytes, 0u);
  EXPECT_LE(encoded.size(), Steim1::MaxEncodedBytes(samples.size()));
  auto decoded = Steim1::Decode(encoded, samples.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, samples);
}

TEST(SteimTest, EmptyInput) { ExpectRoundtrip({}); }

TEST(SteimTest, SingleSample) { ExpectRoundtrip({42}); }

TEST(SteimTest, ConstantSeries) {
  ExpectRoundtrip(std::vector<int32_t>(1000, 7));
}

TEST(SteimTest, SmallDeltasCompressWell) {
  std::vector<int32_t> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(i % 50);
  const std::string encoded = Steim1::Encode(samples);
  // 8-bit diffs: ~4 samples per word, 15 data words per frame.
  EXPECT_LT(encoded.size(), samples.size() * 2);
  ExpectRoundtrip(samples);
}

TEST(SteimTest, LargeJumpsUse32BitDiffs) {
  ExpectRoundtrip({0, 1000000, -1000000, 2000000000, -2000000000, 0});
}

TEST(SteimTest, ExtremeValues) {
  ExpectRoundtrip({std::numeric_limits<int32_t>::max(),
                   std::numeric_limits<int32_t>::min(),
                   std::numeric_limits<int32_t>::max(), 0});
}

TEST(SteimTest, MixedMagnitudeDeltas) {
  std::vector<int32_t> samples{0};
  Random rng(3);
  for (int i = 0; i < 5000; ++i) {
    const int choice = static_cast<int>(rng.Uniform(3));
    int64_t delta = 0;
    if (choice == 0) delta = rng.UniformRange(-100, 100);
    if (choice == 1) delta = rng.UniformRange(-30000, 30000);
    if (choice == 2) delta = rng.UniformRange(-2000000, 2000000);
    samples.push_back(static_cast<int32_t>(samples.back() + delta));
  }
  ExpectRoundtrip(samples);
}

TEST(SteimTest, DecodeRejectsTruncatedPayload) {
  std::vector<int32_t> samples(500, 1);
  for (size_t i = 0; i < samples.size(); ++i) samples[i] = static_cast<int32_t>(i);
  std::string encoded = Steim1::Encode(samples);
  encoded.resize(encoded.size() - Steim1::kFrameBytes);  // drop last frame
  EXPECT_TRUE(Steim1::Decode(encoded, samples.size()).status().IsCorruption());
}

TEST(SteimTest, DecodeRejectsNonFrameMultiple) {
  EXPECT_TRUE(Steim1::Decode(std::string(63, 'x'), 10).status().IsCorruption());
  EXPECT_TRUE(Steim1::Decode(std::string(65, 'x'), 10).status().IsCorruption());
}

TEST(SteimTest, DecodeDetectsCorruptedData) {
  std::vector<int32_t> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(i * 3);
  std::string encoded = Steim1::Encode(samples);
  // Flip a byte in a data word (not the header/X0/XN area of frame 0).
  encoded[16] = static_cast<char>(encoded[16] ^ 0x40);
  const auto decoded = Steim1::Decode(encoded, samples.size());
  // Either the reverse integration constant catches it, or (rarely) the
  // nibble change starves the stream — both must surface as Corruption.
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(SteimTest, MaxEncodedBytesIsUpperBoundAtWorstCase) {
  // Alternating extremes force one 32-bit diff per word.
  std::vector<int32_t> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(i % 2 ? 2000000000 : -2000000000);
  }
  const std::string encoded = Steim1::Encode(samples);
  EXPECT_LE(encoded.size(), Steim1::MaxEncodedBytes(samples.size()));
}

/// Property sweep: synthetic waveform families x sizes all roundtrip.
class SteimRoundtrip
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, bool>> {};

TEST_P(SteimRoundtrip, EncodeDecodeIsIdentity) {
  const auto [seed, n, with_event] = GetParam();
  ExpectRoundtrip(SynthesizeWaveform(seed, n, with_event));
}

INSTANTIATE_TEST_SUITE_P(
    WaveformFamilies, SteimRoundtrip,
    ::testing::Combine(::testing::Values(1ull, 17ull, 99ull, 12345ull),
                       ::testing::Values(1u, 2u, 3u, 13u, 14u, 15u, 64u, 1000u,
                                         4096u),
                       ::testing::Bool()));

/// Boundary sweep around frame-capacity multiples.
class SteimBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(SteimBoundary, SizesAroundFrameBoundariesRoundtrip) {
  std::vector<int32_t> samples;
  for (size_t i = 0; i < GetParam(); ++i) {
    samples.push_back(static_cast<int32_t>(i * 7 % 256) - 128);
  }
  ExpectRoundtrip(samples);
}

INSTANTIATE_TEST_SUITE_P(FrameEdges, SteimBoundary,
                         ::testing::Values(51u, 52u, 53u, 111u, 112u, 113u,
                                           171u, 172u, 173u));

}  // namespace
}  // namespace dex::mseed
