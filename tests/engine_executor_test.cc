#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/optimizer.h"
#include "io/sim_disk.h"

namespace dex {
namespace {

/// Fixture with two small joined tables and one "mountable" source.
class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : disk_(), catalog_(&disk_) {
    // F(uri, station): 3 files.
    auto f_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "F"},
                {"station", DataType::kString, "F"}}));
    auto f = std::make_shared<Table>("F", f_schema);
    EXPECT_TRUE(f->AppendRow({Value::String("u1"), Value::String("ISK")}).ok());
    EXPECT_TRUE(f->AppendRow({Value::String("u2"), Value::String("ANK")}).ok());
    EXPECT_TRUE(f->AppendRow({Value::String("u3"), Value::String("ISK")}).ok());
    EXPECT_TRUE(catalog_.AddTable(f, TableKind::kMetadata).ok());

    // D(uri, n, value): 9 rows, 3 per file.
    auto d_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "D"},
                {"n", DataType::kInt64, "D"},
                {"value", DataType::kDouble, "D"}}));
    auto d = std::make_shared<Table>("D", d_schema);
    for (int file = 1; file <= 3; ++file) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(d->AppendRow({Value::String("u" + std::to_string(file)),
                                  Value::Int64(i),
                                  Value::Double(file * 10.0 + i)})
                        .ok());
      }
    }
    EXPECT_TRUE(catalog_.AddTable(d, TableKind::kActual).ok());
    EXPECT_TRUE(catalog_.SyncStorageSize("D").ok());
    ctx_.catalog = &catalog_;
  }

  Result<TablePtr> Run(PlanPtr plan) {
    DEX_RETURN_NOT_OK(AnalyzePlan(plan, catalog_));
    return ExecutePlan(plan, &ctx_);
  }

  SimDisk disk_;
  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(ExecutorTest, ScanProducesAllRows) {
  auto r = Run(MakeScan("D"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 9u);
  EXPECT_EQ(ctx_.stats.rows_scanned, 9u);
}

TEST_F(ExecutorTest, FilterSelects) {
  auto r = Run(MakeFilter(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("value"),
                    Expr::Lit(Value::Double(20.5))),
      MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 5u);  // 21, 22, 30, 31, 32
}

TEST_F(ExecutorTest, FilterAllPassZeroCopy) {
  auto r = Run(MakeFilter(Expr::Lit(Value::Bool(true)), MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 9u);
}

TEST_F(ExecutorTest, FilterNonePass) {
  auto r = Run(MakeFilter(Expr::Lit(Value::Bool(false)), MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 0u);
}

TEST_F(ExecutorTest, ProjectComputes) {
  auto r = Run(MakeProject(
      {Expr::ColumnRef("n"),
       Expr::Arith(ArithOp::kAdd, Expr::ColumnRef("value"),
                   Expr::Lit(Value::Int64(100)))},
      {"n", "shifted"}, MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_columns(), 2u);
  EXPECT_DOUBLE_EQ((*r)->GetValue(0, 1).dbl(), 110.0);
}

TEST_F(ExecutorTest, HashJoinMatchesOnKey) {
  auto r = Run(MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("D.uri"),
                    Expr::ColumnRef("F.uri")),
      MakeScan("D"), MakeScan("F")));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 9u);  // every D row joins exactly one F row
  EXPECT_EQ((*r)->num_columns(), 5u);
}

TEST_F(ExecutorTest, HashJoinWithResidual) {
  // Join condition carries a non-equi conjunct.
  auto cond = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("D.uri"),
                    Expr::ColumnRef("F.uri")),
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("D.n"),
                    Expr::Lit(Value::Int64(1))));
  auto r = Run(MakeJoin(cond, MakeScan("D"), MakeScan("F")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3u);  // n == 2 per file
}

TEST_F(ExecutorTest, CartesianProductWhenNoEquiKeys) {
  auto r = Run(MakeJoin(Expr::Lit(Value::Bool(true)), MakeScan("D"),
                        MakeScan("F")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 27u);
}

TEST_F(ExecutorTest, JoinSelectiveFilteredBuildSide) {
  auto r = Run(MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("D.uri"),
                    Expr::ColumnRef("F.uri")),
      MakeScan("D"),
      MakeFilter(Expr::Compare(CompareOp::kEq, Expr::ColumnRef("station"),
                               Expr::Lit(Value::String("ISK"))),
                 MakeScan("F"))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 6u);  // u1 and u3
}

TEST_F(ExecutorTest, AggregateWithoutGroups) {
  auto r = Run(MakeAggregate(
      {},
      {{AggFunc::kCount, nullptr, "n"},
       {AggFunc::kSum, Expr::ColumnRef("value"), "s"},
       {AggFunc::kAvg, Expr::ColumnRef("value"), "a"},
       {AggFunc::kMin, Expr::ColumnRef("value"), "lo"},
       {AggFunc::kMax, Expr::ColumnRef("value"), "hi"}},
      MakeScan("D")));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->GetValue(0, 0).int64(), 9);
  EXPECT_DOUBLE_EQ((*r)->GetValue(0, 1).dbl(), 189.0);
  EXPECT_DOUBLE_EQ((*r)->GetValue(0, 2).dbl(), 21.0);
  EXPECT_DOUBLE_EQ((*r)->GetValue(0, 3).dbl(), 10.0);
  EXPECT_DOUBLE_EQ((*r)->GetValue(0, 4).dbl(), 32.0);
}

TEST_F(ExecutorTest, AggregateGroupBy) {
  auto r = Run(MakeAggregate(
      {Expr::ColumnRef("uri")}, {{AggFunc::kCount, nullptr, "n"}},
      MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*r)->GetValue(i, 1).int64(), 3);
  }
}

TEST_F(ExecutorTest, AggregateSumOfIntsIsInt) {
  auto r = Run(MakeAggregate(
      {}, {{AggFunc::kSum, Expr::ColumnRef("n"), "s"}}, MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).type(), DataType::kInt64);
  EXPECT_EQ((*r)->GetValue(0, 0).int64(), 9);  // (0+1+2)*3
}

TEST_F(ExecutorTest, AggregateEmptyInputNoGroups) {
  auto r = Run(MakeAggregate(
      {}, {{AggFunc::kCount, nullptr, "n"}},
      MakeFilter(Expr::Lit(Value::Bool(false)), MakeScan("D"))));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->GetValue(0, 0).int64(), 0);
}

TEST_F(ExecutorTest, AggregateEmptyInputWithGroupsYieldsNoRows) {
  auto r = Run(MakeAggregate(
      {Expr::ColumnRef("uri")}, {{AggFunc::kCount, nullptr, "n"}},
      MakeFilter(Expr::Lit(Value::Bool(false)), MakeScan("D"))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 0u);
}

TEST_F(ExecutorTest, MinMaxOnStrings) {
  auto r = Run(MakeAggregate(
      {},
      {{AggFunc::kMin, Expr::ColumnRef("uri"), "lo"},
       {AggFunc::kMax, Expr::ColumnRef("uri"), "hi"}},
      MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).str(), "u1");
  EXPECT_EQ((*r)->GetValue(0, 1).str(), "u3");
}

TEST_F(ExecutorTest, SortAscendingDescending) {
  auto asc = Run(MakeSort({{Expr::ColumnRef("value"), true}}, MakeScan("D")));
  ASSERT_TRUE(asc.ok());
  EXPECT_DOUBLE_EQ((*asc)->GetValue(0, 2).dbl(), 10.0);
  EXPECT_DOUBLE_EQ((*asc)->GetValue(8, 2).dbl(), 32.0);
  auto desc = Run(MakeSort({{Expr::ColumnRef("value"), false}}, MakeScan("D")));
  ASSERT_TRUE(desc.ok());
  EXPECT_DOUBLE_EQ((*desc)->GetValue(0, 2).dbl(), 32.0);
}

TEST_F(ExecutorTest, SortMultiKey) {
  auto r = Run(MakeSort({{Expr::ColumnRef("uri"), false},
                         {Expr::ColumnRef("n"), true}},
                        MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).str(), "u3");
  EXPECT_EQ((*r)->GetValue(0, 1).int64(), 0);
  EXPECT_EQ((*r)->GetValue(2, 1).int64(), 2);
}

TEST_F(ExecutorTest, LimitTruncates) {
  auto r = Run(MakeLimit(4, MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 4u);
  auto zero = Run(MakeLimit(0, MakeScan("D")));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ((*zero)->num_rows(), 0u);
  auto big = Run(MakeLimit(1000, MakeScan("D")));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ((*big)->num_rows(), 9u);
}

TEST_F(ExecutorTest, UnionConcatenates) {
  auto r = Run(MakeUnion({MakeScan("D"), MakeScan("D")}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 18u);
}

TEST_F(ExecutorTest, ResultScanReadsNamedResult) {
  auto first = Run(MakeScan("F"));
  ASSERT_TRUE(first.ok());
  ctx_.named_results["saved"] = *first;
  auto r = Run(MakeResultScan("saved", (*first)->schema()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3u);
}

TEST_F(ExecutorTest, ResultScanMissingIdFails) {
  auto r = Run(MakeResultScan("ghost", std::make_shared<Schema>()));
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, MountCallsCallback) {
  int mounts = 0;
  ctx_.mount_fn = [&](const std::string& table, const std::string& uri,
                      const ExprPtr& pred) -> Result<TablePtr> {
    ++mounts;
    EXPECT_EQ(table, "D");
    EXPECT_EQ(uri, "u9");
    EXPECT_EQ(pred, nullptr);
    auto t = std::make_shared<Table>("D", (*catalog_.GetTable("D"))->schema());
    EXPECT_TRUE(
        t->AppendRow({Value::String("u9"), Value::Int64(0), Value::Double(1.0)})
            .ok());
    return TablePtr(t);
  };
  auto r = Run(MakeMount("D", "u9"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ(mounts, 1);
  EXPECT_EQ(ctx_.stats.files_mounted, 1u);
  EXPECT_EQ(ctx_.stats.mounted_rows, 1u);
}

TEST_F(ExecutorTest, MountWithoutCallbackFails) {
  auto r = Run(MakeMount("D", "u9"));
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, MountErrorPropagates) {
  ctx_.mount_fn = [&](const std::string&, const std::string& uri,
                      const ExprPtr&) -> Result<TablePtr> {
    return Status::IOError("file vanished: " + uri);
  };
  auto r = Run(MakeMount("D", "gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST_F(ExecutorTest, CacheScanUsesCacheCallback) {
  ctx_.cache_fn = [&](const std::string&,
                      const std::string&) -> Result<TablePtr> {
    auto t = std::make_shared<Table>("D", (*catalog_.GetTable("D"))->schema());
    EXPECT_TRUE(
        t->AppendRow({Value::String("uc"), Value::Int64(1), Value::Double(5.0)})
            .ok());
    return TablePtr(t);
  };
  auto r = Run(MakeCacheScan("D", "uc"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ(ctx_.stats.cache_scans, 1u);
}

TEST_F(ExecutorTest, IndexJoinMatchesHashJoin) {
  ASSERT_TRUE(catalog_.BuildIndex("D", {"uri"}, "D_by_uri").ok());
  PlanPtr plan = MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.uri"),
                    Expr::ColumnRef("D.uri")),
      MakeScan("F"), MakeScan("D"));
  auto hash_result = Run(ClonePlan(plan));
  ASSERT_TRUE(hash_result.ok());
  ctx_.use_index_joins = true;
  auto index_result = Run(plan);
  ASSERT_TRUE(index_result.ok()) << index_result.status().ToString();
  EXPECT_EQ((*index_result)->num_rows(), (*hash_result)->num_rows());
  EXPECT_GT(ctx_.stats.index_probes, 0u);
}

TEST_F(ExecutorTest, IndexJoinHonorsRightFilter) {
  ASSERT_TRUE(catalog_.BuildIndex("D", {"uri"}, "D_by_uri").ok());
  ctx_.use_index_joins = true;
  PlanPtr plan = MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.uri"),
                    Expr::ColumnRef("D.uri")),
      MakeScan("F"),
      MakeFilter(Expr::Compare(CompareOp::kGt, Expr::ColumnRef("n"),
                               Expr::Lit(Value::Int64(0))),
                 MakeScan("D")));
  auto r = Run(plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 6u);  // n in {1, 2} per file
}

TEST_F(ExecutorTest, StageBreakIsTransparentInSingleStageExecution) {
  auto r = Run(MakeStageBreak(MakeScan("F")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3u);
}

TEST_F(ExecutorTest, ScanChargesSimIoOnlyWhenEnabled) {
  disk_.FlushAll();
  const uint64_t t0 = disk_.stats().sim_nanos;
  ctx_.charge_io = false;
  ASSERT_TRUE(Run(MakeScan("D")).ok());
  EXPECT_EQ(disk_.stats().sim_nanos, t0);
  ctx_.charge_io = true;
  ASSERT_TRUE(Run(MakeScan("D")).ok());
  EXPECT_GT(disk_.stats().sim_nanos, t0);
}

}  // namespace
}  // namespace dex
