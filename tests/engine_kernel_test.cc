#include "engine/kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "engine/batch.h"

namespace dex {
namespace {

using kernel::NumericAgg;

bool ScalarCompare(double a, CompareOp op, double b) {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return a >= b;
  }
  return false;
}

const CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};

TEST(KernelFilter, F64MatchesScalarReferenceForEveryOp) {
  Random rng(7);
  std::vector<double> v(1000);
  for (double& x : v) x = static_cast<double>(rng.Uniform(100));
  for (CompareOp op : kAllOps) {
    std::vector<uint32_t> sel(v.size());
    const size_t k = kernel::FilterF64(v.data(), v.size(), op, 50.0, sel.data());
    std::vector<uint32_t> expect;
    for (size_t i = 0; i < v.size(); ++i) {
      if (ScalarCompare(v[i], op, 50.0)) expect.push_back(i);
    }
    ASSERT_EQ(k, expect.size());
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(sel[i], expect[i]);
  }
}

TEST(KernelFilter, I64MatchesScalarReferenceForEveryOp) {
  Random rng(11);
  std::vector<int64_t> v(1000);
  for (int64_t& x : v) x = static_cast<int64_t>(rng.Uniform(100)) - 50;
  for (CompareOp op : kAllOps) {
    std::vector<uint32_t> sel(v.size());
    const size_t k = kernel::FilterI64(v.data(), v.size(), op, 0, sel.data());
    std::vector<uint32_t> expect;
    for (size_t i = 0; i < v.size(); ++i) {
      if (ScalarCompare(static_cast<double>(v[i]), op, 0.0)) {
        expect.push_back(i);
      }
    }
    ASSERT_EQ(k, expect.size());
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(sel[i], expect[i]);
  }
}

TEST(KernelFilter, RefineIsConjunction) {
  std::vector<int64_t> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i);
  std::vector<uint32_t> sel(v.size());
  size_t k = kernel::FilterI64(v.data(), v.size(), CompareOp::kGe, 10,
                               sel.data());
  k = kernel::RefineI64(v.data(), CompareOp::kLt, 20, sel.data(), k);
  ASSERT_EQ(k, 10u);
  for (size_t i = 0; i < k; ++i) EXPECT_EQ(sel[i], 10u + i);
}

TEST(KernelFilter, EmptyInputYieldsEmptySelection) {
  std::vector<uint32_t> sel(1);
  EXPECT_EQ(kernel::FilterF64(nullptr, 0, CompareOp::kEq, 0.0, sel.data()), 0u);
  EXPECT_EQ(kernel::RefineF64(nullptr, CompareOp::kEq, 0.0, sel.data(), 0), 0u);
}

TEST(KernelAgg, DenseAndSelectedAgree) {
  Random rng(23);
  std::vector<double> v(777);
  for (double& x : v) x = static_cast<double>(rng.Uniform(1000)) / 3.0;
  const NumericAgg dense = kernel::AggF64(v.data(), v.size());
  std::vector<uint32_t> all(v.size());
  for (size_t i = 0; i < v.size(); ++i) all[i] = static_cast<uint32_t>(i);
  const NumericAgg selected =
      kernel::AggF64Selected(v.data(), all.data(), all.size());
  EXPECT_EQ(dense.min, selected.min);
  EXPECT_EQ(dense.max, selected.max);
  EXPECT_EQ(dense.sum, selected.sum);
  EXPECT_EQ(dense.count, selected.count);

  double mn = v[0], mx = v[0], sum = 0;
  for (double x : v) {
    mn = std::min(mn, x);
    mx = std::max(mx, x);
    sum += x;
  }
  EXPECT_EQ(dense.min, mn);
  EXPECT_EQ(dense.max, mx);
  EXPECT_EQ(dense.sum, sum);
}

TEST(KernelAgg, I64KeepsExactIntegerResults) {
  // Values near 2^53 where double accumulation would lose exactness.
  std::vector<int64_t> v = {(1LL << 53) + 1, 1, -2, 5};
  const NumericAgg a = kernel::AggI64(v.data(), v.size());
  EXPECT_EQ(a.isum, (1LL << 53) + 5);
  EXPECT_EQ(a.imin, -2);
  EXPECT_EQ(a.imax, (1LL << 53) + 1);
  EXPECT_EQ(a.count, 4u);
}

TEST(KernelAgg, EmptySpanIsZeroed) {
  const NumericAgg a = kernel::AggF64(nullptr, 0);
  EXPECT_EQ(a.count, 0u);
  EXPECT_EQ(a.sum, 0.0);
}

TEST(KernelGroupBy, AssignsDenseSlotsInFirstSeenOrder) {
  const std::vector<int32_t> codes = {4, 2, 4, 7, 2, 2, 0};
  std::vector<int32_t> code_to_group, group_codes;
  std::vector<uint32_t> gid(codes.size());
  kernel::GroupByCodes(codes.data(), nullptr, 0, codes.size(), &code_to_group,
                       &group_codes, gid.data());
  ASSERT_EQ(group_codes.size(), 4u);  // 4, 2, 7, 0 in first-seen order
  EXPECT_EQ(group_codes[0], 4);
  EXPECT_EQ(group_codes[1], 2);
  EXPECT_EQ(group_codes[2], 7);
  EXPECT_EQ(group_codes[3], 0);
  const std::vector<uint32_t> expect_gid = {0, 1, 0, 2, 1, 1, 3};
  for (size_t i = 0; i < codes.size(); ++i) EXPECT_EQ(gid[i], expect_gid[i]);
}

TEST(KernelGroupBy, SelectionRestrictsRows) {
  const std::vector<int32_t> codes = {1, 2, 3, 2, 1};
  const std::vector<uint32_t> sel = {1, 3};  // only the two code-2 rows
  std::vector<int32_t> code_to_group, group_codes;
  std::vector<uint32_t> gid(sel.size());
  kernel::GroupByCodes(codes.data(), sel.data(), sel.size(), codes.size(),
                       &code_to_group, &group_codes, gid.data());
  ASSERT_EQ(group_codes.size(), 1u);
  EXPECT_EQ(group_codes[0], 2);
  EXPECT_EQ(gid[0], 0u);
  EXPECT_EQ(gid[1], 0u);
}

TEST(KernelGroupBy, GroupedAccumulationMatchesScalar) {
  Random rng(41);
  const size_t n = 500;
  std::vector<int32_t> codes(n);
  std::vector<double> vals(n);
  for (size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<int32_t>(rng.Uniform(8));
    vals[i] = static_cast<double>(rng.Uniform(1000));
  }
  std::vector<int32_t> code_to_group, group_codes;
  std::vector<uint32_t> gid(n);
  kernel::GroupByCodes(codes.data(), nullptr, 0, n, &code_to_group,
                       &group_codes, gid.data());
  const size_t groups = group_codes.size();
  std::vector<double> mn(groups, 0), mx(groups, 0), sum(groups, 0);
  std::vector<uint64_t> count(groups, 0);
  std::vector<uint8_t> seen(groups, 0);
  kernel::GroupAccumF64(vals.data(), nullptr, n, gid.data(), mn.data(),
                        mx.data(), sum.data(), count.data(), seen.data());
  for (size_t g = 0; g < groups; ++g) {
    double emn = 0, emx = 0, esum = 0;
    uint64_t ecount = 0;
    for (size_t i = 0; i < n; ++i) {
      if (codes[i] != group_codes[g]) continue;
      if (ecount == 0) {
        emn = emx = vals[i];
      } else {
        emn = std::min(emn, vals[i]);
        emx = std::max(emx, vals[i]);
      }
      esum += vals[i];
      ++ecount;
    }
    ASSERT_TRUE(seen[g]);
    EXPECT_EQ(mn[g], emn);
    EXPECT_EQ(mx[g], emx);
    EXPECT_EQ(sum[g], esum);
    EXPECT_EQ(count[g], ecount);
  }
}

TEST(BatchSelection, CompactGathersSelectedRowsAndDropsVector) {
  auto schema = std::make_shared<Schema>(
      Schema({{"s", DataType::kString, "t"}, {"x", DataType::kInt64, "t"}}));
  Batch b = Batch::Empty(schema);
  for (int i = 0; i < 6; ++i) {
    b.columns[0]->AppendString(i % 2 == 0 ? "even" : "odd");
    b.columns[1]->AppendInt64(i);
  }
  b.selection = {1, 3, 5};
  b.has_selection = true;
  EXPECT_EQ(b.num_rows(), 3u);
  EXPECT_EQ(b.physical_rows(), 6u);
  EXPECT_TRUE(b.Compact());
  EXPECT_FALSE(b.has_selection);
  ASSERT_EQ(b.num_rows(), 3u);
  EXPECT_EQ(b.columns[1]->GetInt64(0), 1);
  EXPECT_EQ(b.columns[1]->GetInt64(2), 5);
  EXPECT_EQ(b.columns[0]->GetString(1), "odd");
  EXPECT_FALSE(b.Compact());  // already dense: no-op
}

}  // namespace
}  // namespace dex
