#include "core/mounter.h"

#include <gtest/gtest.h>

#include "core/seismic_schema.h"
#include "mseed/reader.h"
#include "mseed/writer.h"
#include "test_util.h"

namespace dex {
namespace {

class MounterTest : public ::testing::Test {
 protected:
  MounterTest()
      : disk_(),
        catalog_(&disk_),
        registry_(&disk_),
        cache_(CacheManager::Options{CachePolicy::kAll,
                                     CacheGranularity::kFile, 1 << 30}) {
    dir_ = "/tmp/dex_mounter_test_" + std::to_string(::getpid());
    (void)RemoveDirRecursive(dir_);
    // One file with two records of known content.
    mseed::RecordData r0;
    r0.network = "OR";
    r0.station = "ISK";
    r0.channel = "BHE";
    r0.location = "00";
    r0.start_time_ms = 0;
    r0.sample_rate_hz = 1.0;  // 1000 ms spacing
    r0.samples = {10, 20, 30};
    mseed::RecordData r1 = r0;
    r1.start_time_ms = 100000;
    r1.samples = {-5, 0, 5, 10};
    uri_ = dir_ + "/test.mseed";
    EXPECT_TRUE(mseed::WriteFile(uri_, {r0, r1}).ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>(kDataTableName,
                                                      MakeDataSchema()),
                              TableKind::kActual)
                    .ok());
    auto size = FileSize(uri_);
    auto mtime = FileMtimeMillis(uri_);
    EXPECT_TRUE(size.ok());
    EXPECT_TRUE(mtime.ok());
    EXPECT_TRUE(registry_.Add(uri_, *size, *mtime).ok());
  }
  ~MounterTest() override { (void)RemoveDirRecursive(dir_); }

  SimDisk disk_;
  Catalog catalog_;
  FileRegistry registry_;
  CacheManager cache_;
  MseedAdapter format_;
  std::string dir_;
  std::string uri_;
};

TEST_F(MounterTest, MountExtractsAllSamples) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_);
  Mounter::MountOutcome outcome;
  auto t = mounter.Mount(kDataTableName, uri_, nullptr, &outcome);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ((*t)->num_rows(), 7u);
  // Schema: uri, record_id, sample_time, sample_value.
  EXPECT_EQ((*t)->GetValue(0, 0).str(), uri_);
  EXPECT_EQ((*t)->GetValue(0, 1).int64(), 0);
  EXPECT_EQ((*t)->GetValue(0, 2).int64(), 0);
  EXPECT_DOUBLE_EQ((*t)->GetValue(0, 3).dbl(), 10.0);
  // Second record starts at record_id 1, t=100000, 1000ms spacing.
  EXPECT_EQ((*t)->GetValue(3, 1).int64(), 1);
  EXPECT_EQ((*t)->GetValue(4, 2).int64(), 101000);
  EXPECT_DOUBLE_EQ((*t)->GetValue(6, 3).dbl(), 10.0);
  EXPECT_EQ(outcome.counters.mounts, 1u);
  EXPECT_EQ(outcome.counters.records_decoded, 2u);
  EXPECT_EQ(outcome.counters.samples_decoded, 7u);
}

TEST_F(MounterTest, MountChargesSimulatedRead) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_);
  const uint64_t t0 = disk_.stats().sim_nanos;
  ASSERT_TRUE(mounter.Mount(kDataTableName, uri_, nullptr).ok());
  EXPECT_GT(disk_.stats().sim_nanos, t0);
}

TEST_F(MounterTest, FusedPredicateFilters) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_);
  const ExprPtr pred = Expr::Compare(
      CompareOp::kGt, Expr::ColumnRef("sample_value"),
      Expr::Lit(Value::Int64(5)));
  auto t = mounter.Mount(kDataTableName, uri_, pred);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->num_rows(), 4u);  // 10, 20, 30, 10
}

TEST_F(MounterTest, FileGranularCacheStoresWholeFileDespiteFusedPredicate) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_);
  const ExprPtr pred = Expr::Compare(
      CompareOp::kGt, Expr::ColumnRef("sample_value"),
      Expr::Lit(Value::Int64(5)));
  ASSERT_TRUE(mounter.Mount(kDataTableName, uri_, pred).ok());
  auto mtime = FileMtimeMillis(uri_);
  ASSERT_TRUE(mtime.ok());
  ASSERT_TRUE(cache_.Probe(uri_, "", *mtime));
  auto cached = mounter.CacheLookup(kDataTableName, uri_);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ((*cached)->num_rows(), 7u) << "whole file cached, not the filtered";
}

TEST_F(MounterTest, TupleGranularCacheStoresFilteredTuples) {
  CacheManager tuple_cache(CacheManager::Options{
      CachePolicy::kAll, CacheGranularity::kTuple, 1 << 30});
  Mounter mounter(&registry_, &tuple_cache, StatsCollectorSet{}, nullptr, &format_);
  const ExprPtr pred = Expr::Compare(
      CompareOp::kGt, Expr::ColumnRef("sample_value"),
      Expr::Lit(Value::Int64(5)));
  ASSERT_TRUE(mounter.Mount(kDataTableName, uri_, pred).ok());
  auto mtime = FileMtimeMillis(uri_);
  ASSERT_TRUE(mtime.ok());
  ASSERT_TRUE(tuple_cache.Probe(uri_, pred->ToString(), *mtime));
  auto cached = mounter.CacheLookup(kDataTableName, uri_);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ((*cached)->num_rows(), 4u);
}

TEST_F(MounterTest, UnknownUriFails) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_);
  EXPECT_TRUE(mounter.Mount(kDataTableName, "/nope.mseed", nullptr)
                  .status()
                  .IsNotFound());
}

TEST_F(MounterTest, UnknownTableFails) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_);
  EXPECT_TRUE(
      mounter.Mount("X", uri_, nullptr).status().IsNotImplemented());
  EXPECT_TRUE(mounter.CacheLookup("X", uri_).status().IsNotImplemented());
}

TEST_F(MounterTest, VanishedFileSurfacesAsError) {
  // Under the strict policy errors propagate instead of degrading.
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_,
                  OnMountError::kFail);
  // Registered (stage 1 saw it) but deleted before stage 2 mounts it.
  ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  auto t = mounter.Mount(kDataTableName, uri_, nullptr);
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsIOError()) << t.status().ToString();
}

TEST_F(MounterTest, CorruptFileSurfacesAsCorruption) {
  Mounter mounter(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_,
                  OnMountError::kFail);
  std::string image;
  ASSERT_TRUE(ReadFileToString(uri_, &image).ok());
  image[70] = static_cast<char>(image[70] ^ 0x7f);  // damage first payload
  ASSERT_TRUE(WriteStringToFile(uri_, image).ok());
  auto t = mounter.Mount(kDataTableName, uri_, nullptr);
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsCorruption()) << t.status().ToString();
}

TEST_F(MounterTest, DerivedMetadataCollectedAsSideEffect) {
  auto derived = DerivedMetadata::Create(&catalog_);
  ASSERT_TRUE(derived.ok());
  StatsCollectorSet collectors;
  collectors.Register(derived->get());
  Mounter mounter(&registry_, &cache_, collectors, nullptr, &format_);
  ASSERT_TRUE(mounter.Mount(kDataTableName, uri_, nullptr).ok());
  EXPECT_EQ((*derived)->num_records_covered(), 2u);
  EXPECT_TRUE((*derived)->HasCompleteFile(uri_));
  // Record 0 has samples 10..30; record 1 has -5..10. File range: [-5, 30].
  EXPECT_TRUE((*derived)->MayMatchValueRange(uri_, 0, 100));
  EXPECT_FALSE((*derived)->MayMatchValueRange(uri_, 31, 100));
  EXPECT_FALSE((*derived)->MayMatchValueRange(uri_, -100, -6));
  // The DM table is queryable with per-record stats.
  const TablePtr dm = (*derived)->table();
  ASSERT_EQ(dm->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(dm->GetValue(0, 2).dbl(), 10.0);  // min of record 0
  EXPECT_DOUBLE_EQ(dm->GetValue(0, 3).dbl(), 30.0);  // max
  EXPECT_DOUBLE_EQ(dm->GetValue(0, 4).dbl(), 20.0);  // mean
}

TEST_F(MounterTest, DerivedMetadataIdempotentPerRecord) {
  auto derived = DerivedMetadata::Create(&catalog_);
  ASSERT_TRUE(derived.ok());
  StatsCollectorSet collectors;
  collectors.Register(derived->get());
  Mounter mounter(&registry_, &cache_, collectors, nullptr, &format_);
  ASSERT_TRUE(mounter.Mount(kDataTableName, uri_, nullptr).ok());
  ASSERT_TRUE(mounter.Mount(kDataTableName, uri_, nullptr).ok());
  EXPECT_EQ((*derived)->num_records_covered(), 2u);
  EXPECT_EQ((*derived)->table()->num_rows(), 2u);
}

TEST_F(MounterTest, UnknownValueRangeFileMustMount) {
  auto derived = DerivedMetadata::Create(&catalog_);
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE((*derived)->MayMatchValueRange("/never/seen", 0, 1));
  EXPECT_FALSE((*derived)->HasCompleteFile("/never/seen"));
}

}  // namespace
}  // namespace dex
