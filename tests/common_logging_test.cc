#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace dex {
namespace {

/// Saves and restores the global logger state so tests compose.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threshold_ = Logger::threshold(); }
  void TearDown() override {
    Logger::set_test_sink(nullptr);
    Logger::set_threshold(saved_threshold_);
    ::unsetenv("DEX_LOG_LEVEL");
  }

  LogLevel saved_threshold_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, ParseLogLevelRecognizedNames) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST_F(LoggingTest, ParseLogLevelIsCaseInsensitive) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST_F(LoggingTest, ParseLogLevelRejectsUnknownAndLeavesOutputUntouched) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("fatal", &level));  // not settable from outside
  EXPECT_EQ(level, LogLevel::kError);
}

TEST_F(LoggingTest, ThresholdFiltersLowerSeverities) {
  std::string captured;
  Logger::set_test_sink(&captured);
  Logger::set_threshold(LogLevel::kWarning);

  Logger::Log(LogLevel::kDebug, "below threshold");
  Logger::Log(LogLevel::kInfo, "also below");
  Logger::Log(LogLevel::kWarning, "at threshold");
  Logger::Log(LogLevel::kError, "above threshold");

  EXPECT_EQ(captured.find("below threshold"), std::string::npos);
  EXPECT_EQ(captured.find("also below"), std::string::npos);
  EXPECT_NE(captured.find("[dex WARN] at threshold"), std::string::npos);
  EXPECT_NE(captured.find("[dex ERROR] above threshold"), std::string::npos);
}

TEST_F(LoggingTest, LoweringThresholdAdmitsDebug) {
  std::string captured;
  Logger::set_test_sink(&captured);
  Logger::set_threshold(LogLevel::kDebug);

  DEX_LOG(Debug) << "stage " << 1 << " done";
  EXPECT_NE(captured.find("[dex DEBUG] stage 1 done"), std::string::npos);
}

TEST_F(LoggingTest, InitFromEnvAppliesRecognizedLevel) {
  ::setenv("DEX_LOG_LEVEL", "debug", /*overwrite=*/1);
  EXPECT_TRUE(Logger::InitFromEnv());
  EXPECT_EQ(Logger::threshold(), LogLevel::kDebug);
}

TEST_F(LoggingTest, InitFromEnvIgnoresUnknownOrUnset) {
  Logger::set_threshold(LogLevel::kError);
  ::setenv("DEX_LOG_LEVEL", "chatty", /*overwrite=*/1);
  EXPECT_FALSE(Logger::InitFromEnv());
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);

  ::unsetenv("DEX_LOG_LEVEL");
  EXPECT_FALSE(Logger::InitFromEnv());
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
}

}  // namespace
}  // namespace dex
