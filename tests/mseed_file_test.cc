#include <gtest/gtest.h>

#include "io/file_io.h"
#include "mseed/reader.h"
#include "mseed/writer.h"

namespace dex::mseed {
namespace {

class MseedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/dex_mseed_file_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  static RecordData MakeRecord(const std::string& channel, int64_t start_ms,
                               int n) {
    RecordData rec;
    rec.network = "OR";
    rec.station = "ISK";
    rec.channel = channel;
    rec.location = "00";
    rec.start_time_ms = start_ms;
    rec.sample_rate_hz = 10.0;
    for (int i = 0; i < n; ++i) rec.samples.push_back(i * 2 - n);
    return rec;
  }

  std::string dir_;
};

TEST_F(MseedFileTest, WriteThenScanHeaders) {
  const std::string path = dir_ + "/a.mseed";
  ASSERT_TRUE(WriteFile(path, {MakeRecord("BHE", 0, 100),
                               MakeRecord("BHE", 10000, 250)})
                  .ok());
  auto infos = Reader::ScanHeaders(path);
  ASSERT_TRUE(infos.ok()) << infos.status().ToString();
  ASSERT_EQ(infos->size(), 2u);
  EXPECT_EQ((*infos)[0].header.num_samples, 100u);
  EXPECT_EQ((*infos)[1].header.num_samples, 250u);
  EXPECT_EQ((*infos)[1].header.start_time_ms, 10000);
  EXPECT_EQ((*infos)[0].header_offset, 0u);
  EXPECT_EQ((*infos)[0].data_offset, RecordHeader::kSerializedBytes);
  EXPECT_GT((*infos)[1].header_offset, (*infos)[0].data_offset);
}

TEST_F(MseedFileTest, ReadAllRecordsDecodesSamples) {
  const std::string path = dir_ + "/b.mseed";
  const RecordData rec = MakeRecord("BHZ", 500, 333);
  ASSERT_TRUE(WriteFile(path, {rec}).ok());
  auto records = Reader::ReadAllRecords(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].samples, rec.samples);
  EXPECT_EQ((*records)[0].header.channel, "BHZ");
}

TEST_F(MseedFileTest, ReadSingleRecordViaInfo) {
  const std::string path = dir_ + "/c.mseed";
  const RecordData r0 = MakeRecord("BHE", 0, 64);
  const RecordData r1 = MakeRecord("BHE", 6400, 128);
  ASSERT_TRUE(WriteFile(path, {r0, r1}).ok());
  auto infos = Reader::ScanHeaders(path);
  ASSERT_TRUE(infos.ok());
  auto rec = Reader::ReadRecord(path, (*infos)[1]);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->samples, r1.samples);
}

TEST_F(MseedFileTest, EmptyFileYieldsNoRecords) {
  const std::string path = dir_ + "/empty.mseed";
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto infos = Reader::ScanHeaders(path);
  ASSERT_TRUE(infos.ok());
  EXPECT_TRUE(infos->empty());
}

TEST_F(MseedFileTest, GarbageFileIsCorruption) {
  const std::string path = dir_ + "/garbage.mseed";
  ASSERT_TRUE(WriteStringToFile(path, std::string(200, 'z')).ok());
  EXPECT_TRUE(Reader::ScanHeaders(path).status().IsCorruption());
}

TEST_F(MseedFileTest, TruncatedPayloadIsCorruption) {
  const std::string path = dir_ + "/trunc.mseed";
  ASSERT_TRUE(WriteFile(path, {MakeRecord("BHE", 0, 1000)}).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  image.resize(image.size() - 10);
  ASSERT_TRUE(WriteStringToFile(path, image).ok());
  EXPECT_TRUE(Reader::ScanHeaders(path).status().IsCorruption());
}

TEST_F(MseedFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(Reader::ScanHeaders(dir_ + "/nope.mseed").status().IsIOError());
  EXPECT_TRUE(Reader::ReadAllRecords(dir_ + "/nope.mseed").status().IsIOError());
}

TEST_F(MseedFileTest, SerializeFileMatchesWrittenBytes) {
  const std::vector<RecordData> records = {MakeRecord("BHE", 0, 50)};
  const std::string image = SerializeFile(records);
  const std::string path = dir_ + "/img.mseed";
  ASSERT_TRUE(WriteFile(path, records).ok());
  std::string disk_image;
  ASSERT_TRUE(ReadFileToString(path, &disk_image).ok());
  EXPECT_EQ(image, disk_image);
  // In-memory scan agrees with on-disk scan.
  auto mem = Reader::ScanHeadersInMemory(image);
  auto file = Reader::ScanHeaders(path);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(mem->size(), file->size());
}

TEST_F(MseedFileTest, EmptyRecordListMakesEmptyFile) {
  const std::string path = dir_ + "/none.mseed";
  ASSERT_TRUE(WriteFile(path, {}).ok());
  ASSERT_TRUE(FileSize(path).ok());
  EXPECT_EQ(*FileSize(path), 0u);
}

}  // namespace
}  // namespace dex::mseed
