// Resource governance: deadlines, memory budgets, cooperative cancellation,
// and partial-result degradation. The core guarantee under test: governed
// admission is decided on the *simulated* clock in union-branch order, so a
// partial result — rows, skip counters, and charged simulated I/O — is
// bit-identical at any worker count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/seismic_schema.h"
#include "exec/query_context.h"
#include "io/file_io.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::CanonicalRows;
using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

/// 64 files: 4 stations x 4 channels x 4 days — enough mounts that a
/// half-way deadline lands mid-ingestion.
mseed::GeneratorOptions SixtyFourFileRepo() {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 4;
  gen.channels_per_station = 4;
  gen.num_days = 4;
  return gen;
}

const char* kCountAll = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";
const char* kPerStation =
    "SELECT F.station, AVG(D.sample_value), COUNT(*) "
    "FROM F JOIN D ON F.uri = D.uri "
    "GROUP BY F.station ORDER BY F.station";

std::unique_ptr<Database> OpenWithThreads(const std::string& root,
                                          size_t num_threads,
                                          DatabaseOptions opts = {}) {
  opts.two_stage.num_threads = num_threads;
  auto db = Database::Open(root, opts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

/// The query's full (ungoverned) simulated I/O cost on a cold database.
/// Open()'s metadata scan leaves the files buffer-resident, so flush first —
/// the governed runs below do the same, putting both on the same timeline.
uint64_t FullSimCost(const std::string& root, const char* sql) {
  auto db = OpenWithThreads(root, 1);
  db->FlushBuffers();
  auto r = db->Query(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r->stats.sim_io_nanos : 0;
}

TEST(ResourceGovernance, SimDeadlinePartialResultIsDeterministicAcrossWorkers) {
  ScopedRepo repo("govern_deadline", SixtyFourFileRepo());
  const uint64_t full_sim = FullSimCost(repo.root(), kPerStation);
  ASSERT_GT(full_sim, 0u);

  auto run = [&](size_t threads) {
    DatabaseOptions opts;
    opts.two_stage.sim_deadline_nanos = full_sim / 2;
    auto db = OpenWithThreads(repo.root(), threads, opts);
    db->FlushBuffers();
    auto r = db->Query(kPerStation);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(*r);
  };
  QueryResult serial = run(1);
  QueryResult parallel = run(8);

  // The deadline actually bit: some files skipped, some admitted.
  const TwoStageStats& ts = serial.stats.two_stage;
  EXPECT_TRUE(ts.is_partial);
  EXPECT_GT(ts.files_skipped_deadline, 0u);
  EXPECT_GT(serial.stats.mount.mounts, 0u);
  EXPECT_LT(serial.stats.mount.mounts, 64u);
  EXPECT_GT(ts.cutoff_sim_nanos, 0u);
  // Governed execution reports the serialized lane count.
  EXPECT_EQ(ts.workers, 1u);
  EXPECT_EQ(parallel.stats.two_stage.workers, 1u);

  // Bit-identical partial result and accounting at 1 and 8 workers.
  EXPECT_EQ(CanonicalRows(*serial.table), CanonicalRows(*parallel.table));
  EXPECT_EQ(ts.is_partial, parallel.stats.two_stage.is_partial);
  EXPECT_EQ(ts.files_skipped_deadline,
            parallel.stats.two_stage.files_skipped_deadline);
  EXPECT_EQ(ts.files_skipped_memory,
            parallel.stats.two_stage.files_skipped_memory);
  EXPECT_EQ(ts.cutoff_sim_nanos, parallel.stats.two_stage.cutoff_sim_nanos);
  EXPECT_EQ(serial.stats.mount.mounts, parallel.stats.mount.mounts);
  EXPECT_EQ(serial.stats.sim_io_nanos, parallel.stats.sim_io_nanos);
}

TEST(ResourceGovernance, FailQueryPolicyReturnsDeadlineExceededAndRollsBack) {
  ScopedRepo repo("govern_fail_deadline", SixtyFourFileRepo());
  const uint64_t full_sim = FullSimCost(repo.root(), kCountAll);
  ASSERT_GT(full_sim, 0u);

  DatabaseOptions opts;
  opts.two_stage.sim_deadline_nanos = full_sim / 2;
  opts.two_stage.on_resource_exhausted = OnResourceExhausted::kFailQuery;
  auto db = OpenWithThreads(repo.root(), 4, opts);
  db->FlushBuffers();
  auto r = db->Query(kCountAll);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();

  // Rollback: no partial table reached the catalog, no reservation leaked.
  auto d = db->catalog()->GetTable(kDataTableName);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->num_rows(), 0u);
  EXPECT_EQ(db->memory_budget()->used(), 0u);

  // Lifting the deadline at runtime lets the same database answer in full.
  db->set_sim_deadline_nanos(0);
  auto full = db->Query(kCountAll);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->stats.two_stage.is_partial);
  EXPECT_GT(full->stats.mount.mounts, 0u);
}

TEST(ResourceGovernance, MemoryBudgetPartialResultIsDeterministicAcrossWorkers) {
  ScopedRepo repo("govern_memory", SixtyFourFileRepo());
  // An ungoverned run tracks the high-water mark a governed run would need.
  uint64_t peak = 0;
  {
    auto db = OpenWithThreads(repo.root(), 1);
    auto r = db->Query(kCountAll);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    peak = r->stats.two_stage.mem_reserved_peak;
    EXPECT_EQ(db->memory_budget()->used(), 0u)
        << "per-query reservations must be released";
  }
  ASSERT_GT(peak, 0u);

  auto run = [&](size_t threads) {
    DatabaseOptions opts;
    opts.two_stage.memory_budget_bytes = peak / 2;
    auto db = OpenWithThreads(repo.root(), threads, opts);
    auto r = db->Query(kCountAll);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(*r);
  };
  QueryResult serial = run(1);
  QueryResult parallel = run(8);

  const TwoStageStats& ts = serial.stats.two_stage;
  EXPECT_TRUE(ts.is_partial);
  EXPECT_GT(ts.files_skipped_memory, 0u);
  EXPECT_GT(serial.stats.mount.mounts, 0u);
  EXPECT_LE(ts.mem_reserved_peak, peak / 2);

  EXPECT_EQ(CanonicalRows(*serial.table), CanonicalRows(*parallel.table));
  EXPECT_EQ(ts.files_skipped_memory,
            parallel.stats.two_stage.files_skipped_memory);
  EXPECT_EQ(serial.stats.mount.mounts, parallel.stats.mount.mounts);
  EXPECT_EQ(serial.stats.sim_io_nanos, parallel.stats.sim_io_nanos);
}

TEST(ResourceGovernance, FailQueryPolicyReturnsResourceExhausted) {
  ScopedRepo repo("govern_fail_memory", SixtyFourFileRepo());
  uint64_t peak = 0;
  {
    auto db = OpenWithThreads(repo.root(), 1);
    auto r = db->Query(kCountAll);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    peak = r->stats.two_stage.mem_reserved_peak;
  }
  ASSERT_GT(peak, 0u);

  DatabaseOptions opts;
  opts.two_stage.memory_budget_bytes = peak / 2;
  opts.two_stage.on_resource_exhausted = OnResourceExhausted::kFailQuery;
  auto db = OpenWithThreads(repo.root(), 1, opts);
  auto r = db->Query(kCountAll);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_EQ(db->memory_budget()->used(), 0u)
      << "failed query must release every reservation";

  // Lifting the budget at runtime (shell .memlimit off) restores service.
  db->set_memory_budget_bytes(0);
  auto full = db->Query(kCountAll);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->stats.two_stage.is_partial);
}

TEST(ResourceGovernance, CancellationLeavesDatabaseConsistent) {
  ScopedRepo repo("govern_cancel", SixtyFourFileRepo());
  DatabaseOptions opts;
  opts.two_stage.mount_batch_size = 4;  // breakpoints between batches
  opts.cache.policy = CachePolicy::kLru;
  auto db = OpenWithThreads(repo.root(), 2, opts);

  CancelToken token;
  size_t batches_seen = 0;
  QueryOptions qopts;
  qopts.breakpoint = [&](const BreakpointInfo& info) {
    ++batches_seen;
    if (info.batch_index >= 1) {
      token.Cancel(Status::Aborted("user hit ^C"));
    }
    return BreakpointDecision::kContinue;
  };
  qopts.cancel = &token;
  auto r = db->Query(kCountAll, qopts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("user hit ^C"), std::string::npos)
      << r.status().ToString();
  EXPECT_GT(batches_seen, 0u);

  // Hygiene: nothing dangling. The catalog's D table never grows, the files
  // already ingested live on only as valid cache entries, and no budget
  // reservation leaked.
  auto d = db->catalog()->GetTable(kDataTableName);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->num_rows(), 0u);
  EXPECT_EQ(db->registry()->num_quarantined(), 0u);
  EXPECT_EQ(db->memory_budget()->used(), db->cache()->bytes_used())
      << "after the query only cache entries may hold reservations";

  // The same database keeps serving: a re-run completes in full and may
  // reuse what the cancelled query already ingested.
  auto full = db->Query(kCountAll);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->stats.two_stage.is_partial);

  // Cross-check against an untouched database.
  auto fresh = OpenWithThreads(repo.root(), 1);
  auto expect = fresh->Query(kCountAll);
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  EXPECT_EQ(CanonicalRows(*full->table), CanonicalRows(*expect->table));
}

TEST(ResourceGovernance, UngovernedQueriesKeepParallelPremount) {
  // A database with no limits must not pay the governed serialization: the
  // parallel premount path stays active and reports real worker lanes.
  ScopedRepo repo("govern_off", SixtyFourFileRepo());
  auto db = OpenWithThreads(repo.root(), 4);
  auto r = db->Query(kCountAll);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.two_stage.workers, 4u);
  EXPECT_GT(r->stats.two_stage.mount_tasks, 0u);
  EXPECT_FALSE(r->stats.two_stage.is_partial);
}

// -- MemoryBudget edge cases ------------------------------------------------

TEST(MemoryBudget, ReserveAtExactLimitSucceedsAndNextByteFails) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryReserve(100));  // == limit: allowed
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_FALSE(budget.TryReserve(1));  // one byte over: refused
  EXPECT_EQ(budget.rejections(), 1u);
  EXPECT_EQ(budget.used(), 100u);  // refused reservation was not applied
  budget.Release(100);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_TRUE(budget.TryReserve(1));
}

TEST(MemoryBudget, ReleaseMoreThanReservedClampsToZero) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.TryReserve(40));
  budget.Release(100);  // buggy caller over-releases
  EXPECT_EQ(budget.used(), 0u);  // clamped, not wrapped to ~2^64
  // The budget is not poisoned: the full limit is still reservable.
  EXPECT_TRUE(budget.TryReserve(100));
  EXPECT_EQ(budget.used(), 100u);
}

TEST(MemoryBudget, ZeroLimitIsUnlimitedButStillTracksUsage) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryReserve(1ull << 60));
  EXPECT_EQ(budget.used(), 1ull << 60);
  EXPECT_EQ(budget.rejections(), 0u);
  budget.Release(1ull << 60);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudget, ConcurrentReserveReleaseStaysConsistent) {
  // Hammer TryReserve/Release from many threads (TSan-meaningful): the
  // budget must never admit more than the limit, and once every successful
  // reservation is released, usage must return to exactly zero.
  MemoryBudget budget(1000);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&budget, t] {
      const uint64_t bytes = 1 + static_cast<uint64_t>(t) * 13 % 97;
      for (int i = 0; i < kIters; ++i) {
        if (budget.TryReserve(bytes)) {
          EXPECT_LE(budget.used(), 1000u);
          budget.Release(bytes);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_LE(budget.peak(), 1000u);  // reservations never exceeded the limit
}

}  // namespace
}  // namespace dex
