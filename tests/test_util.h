#ifndef DEX_TESTS_TEST_UTIL_H_
#define DEX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace dex::testing {

/// Asserts a Status/Result is OK with a useful message.
#define DEX_ASSERT_OK(expr)                                \
  do {                                                     \
    const auto& _r = (expr);                               \
    ASSERT_TRUE(_r.ok()) << _r.status().ToString();        \
  } while (false)

#define DEX_EXPECT_OK(expr)                                \
  do {                                                     \
    const auto& _r = (expr);                               \
    EXPECT_TRUE(_r.ok()) << _r.status().ToString();        \
  } while (false)

#define DEX_ASSERT_STATUS_OK(expr)                         \
  do {                                                     \
    const ::dex::Status _s = (expr);                       \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                 \
  } while (false)

/// A tiny deterministic repository for fast tests: 2 stations x 2 channels
/// x 2 days, low sample rate (fast to generate and mount).
inline mseed::GeneratorOptions TinyRepoOptions() {
  mseed::GeneratorOptions gen;
  gen.seed = 7;
  gen.num_stations = 2;
  gen.channels_per_station = 2;
  gen.num_days = 2;
  gen.records_per_file = 3;
  gen.sample_rate_hz = 0.01;  // 864 samples/day/file
  gen.gap_probability = 0.0;
  gen.start_day = "2010-01-01";
  return gen;
}

/// A somewhat larger repository for equivalence sweeps.
inline mseed::GeneratorOptions SmallRepoOptions() {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 3;
  gen.channels_per_station = 3;
  gen.num_days = 3;
  gen.sample_rate_hz = 0.02;
  gen.gap_probability = 0.05;
  return gen;
}

/// Scoped temp repository: generates at construction, removes at destruction.
/// The root is suffixed with the pid so suites sharing a fixture name do not
/// collide when ctest runs their per-test processes in parallel.
class ScopedRepo {
 public:
  explicit ScopedRepo(const std::string& name,
                      const mseed::GeneratorOptions& gen = TinyRepoOptions())
      : root_("/tmp/dex_test_" + name + "_" + std::to_string(::getpid())) {
    (void)RemoveDirRecursive(root_);
    auto repo = mseed::GenerateRepository(root_, gen);
    EXPECT_TRUE(repo.ok()) << repo.status().ToString();
    if (repo.ok()) info_ = *repo;
  }
  ~ScopedRepo() { (void)RemoveDirRecursive(root_); }

  const std::string& root() const { return root_; }
  const mseed::GeneratedRepo& info() const { return info_; }

 private:
  std::string root_;
  mseed::GeneratedRepo info_;
};

/// Opens the repo twice — lazily (ALi) and eagerly (Ei) — for equivalence
/// testing.
struct DualDatabase {
  std::unique_ptr<Database> ali;
  std::unique_ptr<Database> ei;
};

inline DualDatabase OpenDual(const std::string& root,
                             DatabaseOptions lazy_opts = {},
                             DatabaseOptions eager_opts = {}) {
  DualDatabase dual;
  lazy_opts.mode = IngestionMode::kLazy;
  eager_opts.mode = IngestionMode::kEager;
  auto ali = Database::Open(root, lazy_opts);
  auto ei = Database::Open(root, eager_opts);
  EXPECT_TRUE(ali.ok()) << ali.status().ToString();
  EXPECT_TRUE(ei.ok()) << ei.status().ToString();
  if (ali.ok()) dual.ali = std::move(*ali);
  if (ei.ok()) dual.ei = std::move(*ei);
  return dual;
}

/// Renders a table as sorted rows of cell strings, so results can be
/// compared independent of row order. Doubles are rounded to 9 significant
/// digits to absorb summation-order differences.
inline std::vector<std::string> CanonicalRows(const Table& table) {
  std::vector<std::string> rows;
  rows.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value v = table.GetValue(r, c);
      if (v.type() == DataType::kDouble) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", v.dbl());
        row += buf;
      } else {
        row += v.ToString();
      }
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Asserts the two databases produce identical (order-insensitive) results.
inline void ExpectSameResults(Database* ali, Database* ei,
                              const std::string& sql) {
  auto a = ali->Query(sql);
  auto e = ei->Query(sql);
  ASSERT_TRUE(a.ok()) << "ALi failed: " << a.status().ToString() << "\n" << sql;
  ASSERT_TRUE(e.ok()) << "Ei failed: " << e.status().ToString() << "\n" << sql;
  EXPECT_EQ(a->table->num_rows(), e->table->num_rows()) << sql;
  EXPECT_EQ(CanonicalRows(*a->table), CanonicalRows(*e->table)) << sql;
}

}  // namespace dex::testing

#endif  // DEX_TESTS_TEST_UTIL_H_
