#include "mseed/steim2.h"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "common/random.h"
#include "mseed/generator.h"
#include "mseed/reader.h"
#include "mseed/steim.h"
#include "io/file_io.h"
#include "mseed/writer.h"

namespace dex::mseed {
namespace {

void ExpectRoundtrip(const std::vector<int32_t>& samples) {
  auto encoded = Steim2::Encode(samples);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  if (samples.empty()) {
    EXPECT_TRUE(encoded->empty());
    return;
  }
  EXPECT_EQ(encoded->size() % Steim2::kFrameBytes, 0u);
  auto decoded = Steim2::Decode(*encoded, samples.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, samples);
}

TEST(Steim2Test, EmptyAndSingle) {
  ExpectRoundtrip({});
  ExpectRoundtrip({42});
  ExpectRoundtrip({-42});
}

TEST(Steim2Test, ConstantSeries) {
  ExpectRoundtrip(std::vector<int32_t>(5000, -7));
}

TEST(Steim2Test, EveryPackingWidthExercised) {
  // Build runs of diffs sized for each packing: 4-bit, 5-bit, 6-bit, 8-bit,
  // 10-bit, 15-bit, 30-bit.
  std::vector<int32_t> samples{0};
  auto extend = [&](int64_t delta, int n) {
    for (int i = 0; i < n; ++i) {
      samples.push_back(static_cast<int32_t>(samples.back() + delta));
      delta = -delta;
    }
  };
  extend(7, 21);          // 4-bit (7 per word)
  extend(15, 12);         // 5-bit (6 per word)
  extend(31, 10);         // 6-bit (5 per word)
  extend(127, 8);         // 8-bit (4 per word)
  extend(511, 6);         // 10-bit (3 per word)
  extend(16000, 4);       // 15-bit (2 per word)
  extend(300000000, 3);   // 30-bit (1 per word)
  ExpectRoundtrip(samples);
}

TEST(Steim2Test, CompressesBetterThanSteim1OnSmoothData) {
  const auto samples = SynthesizeWaveform(5, 86400, false);
  auto s2 = Steim2::Encode(samples);
  ASSERT_TRUE(s2.ok());
  const std::string s1 = Steim1::Encode(samples);
  EXPECT_LT(s2->size(), s1.size())
      << "Steim2 should beat Steim1 on low-amplitude microseism data";
}

TEST(Steim2Test, RejectsOutOfRangeDifferences) {
  // A jump from min to max needs ~32 bits of difference.
  const std::vector<int32_t> samples = {std::numeric_limits<int32_t>::min(),
                                        std::numeric_limits<int32_t>::max()};
  EXPECT_TRUE(Steim2::Encode(samples).status().IsInvalidArgument());
}

TEST(Steim2Test, FirstDifferenceOutOfRangeIsFine) {
  // d[0] = x[0] is huge but never used by the decoder.
  ExpectRoundtrip({2000000000, 2000000001, 2000000000});
}

TEST(Steim2Test, DecodeRejectsTruncation) {
  std::vector<int32_t> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(i * 3);
  auto encoded = Steim2::Encode(samples);
  ASSERT_TRUE(encoded.ok());
  std::string cut = encoded->substr(0, encoded->size() - Steim2::kFrameBytes);
  EXPECT_TRUE(Steim2::Decode(cut, samples.size()).status().IsCorruption());
  EXPECT_TRUE(Steim2::Decode("short", 3).status().IsCorruption());
}

TEST(Steim2Test, DecodeDetectsBitFlips) {
  std::vector<int32_t> samples;
  for (int i = 0; i < 300; ++i) samples.push_back(i % 97);
  auto encoded = Steim2::Encode(samples);
  ASSERT_TRUE(encoded.ok());
  std::string bad = *encoded;
  // Flip the lowest bit of a data word's last difference (byte 23 = least
  // significant byte of word 5; bits 28-29 of a 7x4 word are padding, so
  // flip where it provably lands inside a difference).
  bad[23] = static_cast<char>(bad[23] ^ 0x01);
  EXPECT_TRUE(Steim2::Decode(bad, samples.size()).status().IsCorruption());
}

class Steim2Roundtrip
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, bool>> {};

TEST_P(Steim2Roundtrip, EncodeDecodeIsIdentity) {
  const auto [seed, n, with_event] = GetParam();
  ExpectRoundtrip(SynthesizeWaveform(seed, n, with_event));
}

INSTANTIATE_TEST_SUITE_P(
    WaveformFamilies, Steim2Roundtrip,
    ::testing::Combine(::testing::Values(2ull, 23ull, 555ull),
                       ::testing::Values(1u, 7u, 8u, 52u, 53u, 1000u, 4096u),
                       ::testing::Bool()));

TEST(Steim2Roundtrip, RandomMixedMagnitudes) {
  Random rng(77);
  std::vector<int32_t> samples{0};
  int64_t cur = 0;
  for (int i = 0; i < 5000; ++i) {
    const int choice = static_cast<int>(rng.Uniform(4));
    int64_t delta = 0;
    if (choice == 0) delta = rng.UniformRange(-7, 7);
    if (choice == 1) delta = rng.UniformRange(-500, 500);
    if (choice == 2) delta = rng.UniformRange(-16000, 16000);
    if (choice == 3) delta = rng.UniformRange(-200000000, 200000000);
    // Keep the walk bounded so consecutive differences never exceed
    // Steim2's 30-bit range through int32 wraparound.
    if (cur + delta > 1000000000 || cur + delta < -1000000000) delta = -delta;
    cur += delta;
    samples.push_back(static_cast<int32_t>(cur));
  }
  ExpectRoundtrip(samples);
}

// ---------- end-to-end through the file format ----------

TEST(Steim2FileTest, RecordsRoundtripThroughFiles) {
  RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 1000;
  rec.sample_rate_hz = 10.0;
  rec.encoding = 2;
  rec.samples = SynthesizeWaveform(9, 2000, true);
  const std::string image = SerializeFile({rec});
  auto infos = Reader::ScanHeadersInMemory(image);
  ASSERT_TRUE(infos.ok());
  ASSERT_EQ(infos->size(), 1u);
  EXPECT_EQ((*infos)[0].header.encoding, 2);
}

TEST(Steim2FileTest, MixedEncodingFile) {
  RecordData steim1_rec;
  steim1_rec.network = "OR";
  steim1_rec.station = "ISK";
  steim1_rec.channel = "BHE";
  steim1_rec.location = "00";
  steim1_rec.start_time_ms = 0;
  steim1_rec.sample_rate_hz = 1.0;
  steim1_rec.encoding = 1;
  steim1_rec.samples = {1, 2, 3, 4};
  RecordData steim2_rec = steim1_rec;
  steim2_rec.start_time_ms = 10000;
  steim2_rec.encoding = 2;
  steim2_rec.samples = {9, 8, 7};

  const std::string path = "/tmp/dex_steim2_mixed.mseed";
  ASSERT_TRUE(WriteFile(path, {steim1_rec, steim2_rec}).ok());
  auto records = Reader::ReadAllRecords(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].samples, steim1_rec.samples);
  EXPECT_EQ((*records)[1].samples, steim2_rec.samples);
  EXPECT_EQ((*records)[0].header.encoding, 1);
  EXPECT_EQ((*records)[1].header.encoding, 2);
  (void)RemoveDirRecursive(path);
}

TEST(Steim2FileTest, WriterFallsBackWhenOutOfRange) {
  RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 0;
  rec.sample_rate_hz = 1.0;
  rec.encoding = 2;
  rec.samples = {std::numeric_limits<int32_t>::min(),
                 std::numeric_limits<int32_t>::max()};
  const std::string image = SerializeFile({rec});
  auto infos = Reader::ScanHeadersInMemory(image);
  ASSERT_TRUE(infos.ok());
  EXPECT_EQ((*infos)[0].header.encoding, 1) << "must fall back to Steim1";
  auto parsed = Reader::ScanHeadersInMemory(image);
  ASSERT_TRUE(parsed.ok());
}

TEST(Steim2FileTest, UnknownEncodingRejected) {
  RecordHeader h;
  h.network = "OR";
  h.station = "ISK";
  h.channel = "BHE";
  h.location = "00";
  h.start_time_ms = 0;
  h.sample_rate_hz = 1.0;
  h.num_samples = 0;
  h.data_bytes = 0;
  h.encoding = 7;
  std::string buf;
  h.AppendTo(&buf);
  EXPECT_TRUE(RecordHeader::Parse(buf, 0).status().IsCorruption());
}

TEST(Steim2FileTest, GeneratorEncodingOption) {
  const std::string dir = "/tmp/dex_steim2_repo";
  (void)RemoveDirRecursive(dir);
  GeneratorOptions gen;
  gen.num_stations = 1;
  gen.channels_per_station = 1;
  gen.num_days = 1;
  gen.records_per_file = 2;
  gen.sample_rate_hz = 0.05;
  gen.gap_probability = 0.0;
  gen.encoding = 2;
  auto repo = GenerateRepository(dir, gen);
  ASSERT_TRUE(repo.ok());
  auto records = Reader::ReadAllRecords(repo->files[0]);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  for (const DecodedRecord& rec : *records) {
    EXPECT_EQ(rec.header.encoding, 2);
  }
  // Steim2 repository is smaller than the same content in Steim1.
  GeneratorOptions gen1 = gen;
  gen1.encoding = 1;
  auto repo1 = GenerateRepository(dir + "_s1", gen1);
  ASSERT_TRUE(repo1.ok());
  EXPECT_LT(repo->total_bytes, repo1->total_bytes);
  (void)RemoveDirRecursive(dir);
  (void)RemoveDirRecursive(dir + "_s1");
}

}  // namespace
}  // namespace dex::mseed
