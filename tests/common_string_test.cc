#include "common/string_utils.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

TEST(StringTest, SplitBasic) {
  const auto parts = Split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split(",", ',').size(), 2u);
}

TEST(StringTest, JoinInvertsSplit) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StringTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_EQ(ToUpper("already UPPER 123"), "ALREADY UPPER 123");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("table:F", "table:"));
  EXPECT_FALSE(StartsWith("F", "table:"));
  EXPECT_TRUE(EndsWith("file.mseed", ".mseed"));
  EXPECT_FALSE(EndsWith("file.mseed2", ".mseed"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1024), "1.0 KB");
  EXPECT_EQ(FormatBytes(10 * 1024 * 1024), "10.0 MB");
  EXPECT_EQ(FormatBytes(1395864371ull), "1.3 GB");  // the paper's repo size
}

TEST(StringTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(660259608ull), "660,259,608");  // Table 1's |D|
}

}  // namespace
}  // namespace dex
