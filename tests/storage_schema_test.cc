#include "storage/schema.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

Schema MakeFR() {
  return Schema({{"uri", DataType::kString, "F"},
                 {"station", DataType::kString, "F"},
                 {"uri", DataType::kString, "R"},
                 {"record_id", DataType::kInt64, "R"}});
}

TEST(SchemaTest, QualifiedLookup) {
  const Schema s = MakeFR();
  ASSERT_TRUE(s.FieldIndex("F.uri").ok());
  EXPECT_EQ(*s.FieldIndex("F.uri"), 0u);
  EXPECT_EQ(*s.FieldIndex("R.uri"), 2u);
  EXPECT_EQ(*s.FieldIndex("R.record_id"), 3u);
}

TEST(SchemaTest, UnqualifiedUniqueLookup) {
  const Schema s = MakeFR();
  ASSERT_TRUE(s.FieldIndex("station").ok());
  EXPECT_EQ(*s.FieldIndex("station"), 1u);
}

TEST(SchemaTest, UnqualifiedAmbiguousRejected) {
  const Schema s = MakeFR();
  const auto r = s.FieldIndex("uri");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST(SchemaTest, MissingColumnIsNotFound) {
  const Schema s = MakeFR();
  EXPECT_TRUE(s.FieldIndex("nope").status().IsNotFound());
  EXPECT_TRUE(s.FieldIndex("F.nope").status().IsNotFound());
  EXPECT_TRUE(s.FieldIndex("Z.uri").status().IsNotFound());
}

TEST(SchemaTest, FindFieldIndexReturnsMinusOne) {
  const Schema s = MakeFR();
  EXPECT_EQ(s.FindFieldIndex("uri"), -1);   // ambiguous
  EXPECT_EQ(s.FindFieldIndex("none"), -1);  // missing
  EXPECT_EQ(s.FindFieldIndex("F.station"), 1);
}

TEST(SchemaTest, ConcatKeepsOrderAndQualifiers) {
  const Schema left({{"a", DataType::kInt64, "L"}});
  const Schema right({{"b", DataType::kDouble, "R"}, {"c", DataType::kString, "R"}});
  const auto joined = Schema::Concat(left, right);
  ASSERT_EQ(joined->num_fields(), 3u);
  EXPECT_EQ(joined->field(0).QualifiedName(), "L.a");
  EXPECT_EQ(joined->field(2).QualifiedName(), "R.c");
}

TEST(SchemaTest, QualifiedNameWithoutQualifier) {
  const Field f{"alone", DataType::kInt64, ""};
  EXPECT_EQ(f.QualifiedName(), "alone");
}

TEST(SchemaTest, ToStringListsTypes) {
  const Schema s({{"x", DataType::kTimestamp, "T"}});
  EXPECT_EQ(s.ToString(), "(T.x TIMESTAMP)");
}

TEST(SchemaTest, AddFieldGrows) {
  Schema s;
  EXPECT_EQ(s.num_fields(), 0u);
  s.AddField({"n", DataType::kInt64, ""});
  EXPECT_EQ(s.num_fields(), 1u);
}

}  // namespace
}  // namespace dex
