#include <gtest/gtest.h>

#include <string>

#include "test_util.h"

namespace dex {
namespace {

using dex::testing::ScopedRepo;
using dex::testing::TinyRepoOptions;

/// Joins the one-column QUERY PLAN table back into plan text.
std::string PlanText(const Table& table) {
  std::string text;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    text += table.column(0)->GetString(r);
    text += '\n';
  }
  return text;
}

TEST(ExplainAnalyzeTest, PlainExplainReturnsPlanTable) {
  ScopedRepo repo("explain_plain", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  DEX_ASSERT_OK(db);

  auto result = (*db)->Query("EXPLAIN SELECT COUNT(*) FROM F");
  DEX_ASSERT_OK(result);
  ASSERT_EQ(result->table->num_columns(), 1u);
  EXPECT_NE(result->table->schema()->ToString().find("QUERY PLAN"),
            std::string::npos);
  EXPECT_GT(result->table->num_rows(), 0u);
  const std::string text = PlanText(*result->table);
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan(F)"), std::string::npos) << text;
  EXPECT_EQ(result->stats.result_rows, result->table->num_rows());
}

TEST(ExplainAnalyzeTest, MetadataQueryReportsPerOperatorRowCounts) {
  // Tiny repo: 2 stations x 2 channels x 2 days = 8 files, so Scan(F) must
  // report exactly 8 rows and the aggregate exactly 1.
  ScopedRepo repo("explain_analyze_meta", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  DEX_ASSERT_OK(db);

  auto result = (*db)->Query("EXPLAIN ANALYZE SELECT COUNT(*) FROM F");
  DEX_ASSERT_OK(result);
  const std::string text = PlanText(*result->table);
  EXPECT_NE(text.find("stage 1 (metadata only):"), std::string::npos) << text;

  // Per-operator annotations: the scan's row count and the aggregate's.
  const size_t agg = text.find("Aggregate");
  ASSERT_NE(agg, std::string::npos) << text;
  EXPECT_NE(text.find("(rows=1 ", agg), std::string::npos) << text;
  const size_t scan = text.find("Scan(F)");
  ASSERT_NE(scan, std::string::npos) << text;
  EXPECT_NE(text.find("(rows=8 ", scan), std::string::npos) << text;

  EXPECT_NE(text.find("-- execution --"), std::string::npos) << text;
  EXPECT_NE(text.find("result rows: 1"), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, TwoStageQueryShowsBothStagesAndMounts) {
  ScopedRepo repo("explain_analyze_lazy", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  DEX_ASSERT_OK(db);

  auto result = (*db)->Query(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri");
  DEX_ASSERT_OK(result);
  const std::string text = PlanText(*result->table);
  EXPECT_NE(text.find("stage 1 (Q_f):"), std::string::npos) << text;
  EXPECT_NE(text.find("stage 2:"), std::string::npos) << text;
  EXPECT_NE(text.find("Mount("), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos) << text;

  // The stage-2 aggregate's row count must match what the plain query
  // returns: one output row.
  const size_t stage2 = text.find("stage 2:");
  const size_t agg = text.find("Aggregate", stage2);
  ASSERT_NE(agg, std::string::npos) << text;
  EXPECT_NE(text.find("(rows=1 ", agg), std::string::npos) << text;

  // ANALYZE really executed: the mount decode counters moved.
  EXPECT_GT(result->stats.mount.mounts, 0u);
}

TEST(ExplainAnalyzeTest, EagerModeProfilesTheSingleStagePlan) {
  ScopedRepo repo("explain_analyze_eager", TinyRepoOptions());
  DatabaseOptions options;
  options.mode = IngestionMode::kEager;
  auto db = Database::Open(repo.root(), options);
  DEX_ASSERT_OK(db);

  auto result = (*db)->Query("EXPLAIN ANALYZE SELECT COUNT(*) FROM F");
  DEX_ASSERT_OK(result);
  const std::string text = PlanText(*result->table);
  EXPECT_NE(text.find("plan:"), std::string::npos) << text;
  EXPECT_NE(text.find("(rows=1 "), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, AnalyzeMatchesPlainQueryRowCount) {
  ScopedRepo repo("explain_analyze_match", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  DEX_ASSERT_OK(db);

  const std::string sql =
      "SELECT F.station, COUNT(*) AS n FROM F GROUP BY F.station";
  auto plain = (*db)->Query(sql);
  DEX_ASSERT_OK(plain);

  auto analyzed = (*db)->Query("explain analyze " + sql);  // case-insensitive
  DEX_ASSERT_OK(analyzed);
  const std::string text = PlanText(*analyzed->table);
  EXPECT_NE(text.find("result rows: " +
                      std::to_string(plain->table->num_rows())),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace dex
