// ShardedRepository + the sharded two-stage executor. The contract under
// test: the file→shard partition is a pure function of the catalog and the
// policy, and a sharded query's results, quarantine decisions, and charged
// simulated time are bit-identical at any worker count and any physical
// pool size — only the shard count (and the seeded shard faults) may change
// what the query costs or returns.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "io/sim_disk.h"
#include "mseed/writer.h"
#include "shard/sharded_repository.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::CanonicalRows;
using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

/// 64 files: 4 stations x 4 channels x 4 days (the bench_shard shape).
mseed::GeneratorOptions SixtyFourFileRepo() {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 4;
  gen.channels_per_station = 4;
  gen.num_days = 4;
  return gen;
}

/// Touches every file: per-station aggregate over the D join.
const char* kPerStation =
    "SELECT F.station, AVG(D.sample_value), COUNT(*) "
    "FROM F JOIN D ON F.uri = D.uri "
    "GROUP BY F.station ORDER BY F.station";

// --- Partitioning: pure function of (catalog, policy).

TEST(ShardedRepository, StationKeyIsTheParentDirectory) {
  EXPECT_EQ(ShardedRepository::StationKeyOf("/repo/STA01/XX.STA01.BHE.000.ms"),
            "STA01");
  EXPECT_EQ(ShardedRepository::StationKeyOf("rel/ISK/XX.ISK.BHE.000.ms"),
            "ISK");
  EXPECT_EQ(ShardedRepository::StationKeyOf("no_directory.mseed"), "");
  EXPECT_EQ(ShardedRepository::StationKeyOf("/rootfile.mseed"), "");
}

TEST(ShardedRepository, ClampShardCountHonorsConfiguredCeiling) {
  SimDisk disk;
  ShardedRepository::Options opts;
  opts.num_shards = 4;
  ShardedRepository shards(&disk, opts);
  EXPECT_EQ(shards.ClampShardCount(0), 4);   // 0 = "use configured"
  EXPECT_EQ(shards.ClampShardCount(-3), 4);
  EXPECT_EQ(shards.ClampShardCount(2), 2);
  EXPECT_EQ(shards.ClampShardCount(4), 4);
  EXPECT_EQ(shards.ClampShardCount(16), 4);  // never above configured
}

TEST(ShardedRepository, HashPartitionIsStableAndInRange) {
  SimDisk disk;
  ShardedRepository::Options opts;
  opts.num_shards = 4;
  ShardedRepository shards(&disk, opts);

  std::vector<std::string> uris;
  for (int i = 0; i < 40; ++i) {
    uris.push_back("/repo/S" + std::to_string(i % 5) + "/file" +
                   std::to_string(i) + ".mseed");
  }
  shards.AssignCatalog(uris);

  size_t counted = 0;
  for (const std::string& uri : uris) {
    const int s = shards.ShardOf(uri);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(shards.ShardOf(uri), s);  // stable across calls
  }
  for (const auto& row : shards.StatusRows()) counted += row.files;
  EXPECT_EQ(counted, uris.size());

  // Hash is stateless: a catalog rebuild never moves an existing file.
  const int before = shards.ShardOf(uris[0]);
  uris.push_back("/repo/S9/newcomer.mseed");
  shards.AssignCatalog(uris);
  EXPECT_EQ(shards.ShardOf(uris[0]), before);
}

TEST(ShardedRepository, StationRangeCoLocatesStationsInSortedChunks) {
  SimDisk disk;
  ShardedRepository::Options opts;
  opts.num_shards = 2;
  opts.policy = ShardedRepository::Policy::kStationRange;
  ShardedRepository shards(&disk, opts);

  const std::vector<std::string> uris = {
      "/repo/AAA/f1.ms", "/repo/AAA/f2.ms", "/repo/BBB/f1.ms",
      "/repo/CCC/f1.ms", "/repo/DDD/f1.ms", "/repo/DDD/f2.ms",
  };
  shards.AssignCatalog(uris);

  // Sorted stations [AAA BBB CCC DDD] chunked into two ranges.
  EXPECT_EQ(shards.ShardOf("/repo/AAA/f1.ms"), 0);
  EXPECT_EQ(shards.ShardOf("/repo/AAA/f2.ms"), 0);
  EXPECT_EQ(shards.ShardOf("/repo/BBB/f1.ms"), 0);
  EXPECT_EQ(shards.ShardOf("/repo/CCC/f1.ms"), 1);
  EXPECT_EQ(shards.ShardOf("/repo/DDD/f1.ms"), 1);
  EXPECT_EQ(shards.ShardOf("/repo/DDD/f2.ms"), 1);

  // A per-query re-partition to 1 shard routes everything to shard 0.
  for (const std::string& uri : uris) EXPECT_EQ(shards.ShardOf(uri, 1), 0);
}

TEST(ShardedRepository, KillAndHealToggleLinkHealth) {
  SimDisk disk;
  ShardedRepository::Options opts;
  opts.num_shards = 3;
  ShardedRepository shards(&disk, opts);

  EXPECT_FALSE(shards.HasDeadShards());
  DEX_ASSERT_STATUS_OK(shards.KillShard(1));
  EXPECT_TRUE(shards.HasDeadShards());
  EXPECT_FALSE(shards.IsShardAlive(1));
  EXPECT_TRUE(shards.IsShardAlive(0));
  EXPECT_FALSE(shards.StatusRows()[1].alive);
  DEX_ASSERT_STATUS_OK(shards.HealShard(1));
  EXPECT_FALSE(shards.HasDeadShards());
  EXPECT_FALSE(shards.KillShard(7).ok());
  EXPECT_FALSE(shards.IsShardAlive(-1));
}

// --- End-to-end: the sharded executor's determinism contract.

struct SweepRun {
  std::vector<std::string> rows;
  uint64_t disk_sim_nanos = 0;   // total charged clock: open + query
  uint64_t net_sim_nanos = 0;
  uint64_t parallel_sim_nanos = 0;
  size_t num_shards = 0;
  size_t quarantined = 0;
};

SweepRun RunSweep(const std::string& root, size_t workers, size_t pool,
                  int shards, double loss_rate = 0.0, uint64_t seed = 0) {
  DatabaseOptions opts;
  opts.shard.num_shards = shards;
  opts.shard.net.fault_seed = seed;
  opts.shard.net.transient_loss_rate = loss_rate;
  opts.two_stage.num_threads = workers;
  opts.stage1_threads = workers;
  opts.pool_threads = pool;
  auto db = Database::Open(root, opts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  SweepRun out;
  if (!db.ok()) return out;
  auto r = (*db)->Query(kPerStation);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return out;
  out.rows = CanonicalRows(*r->table);
  out.disk_sim_nanos = (*db)->disk()->stats().sim_nanos;
  out.net_sim_nanos = r->stats.two_stage.net_sim_nanos;
  out.parallel_sim_nanos = r->stats.two_stage.parallel_sim_nanos;
  out.num_shards = r->stats.two_stage.num_shards;
  out.quarantined = (*db)->registry()->num_quarantined();
  return out;
}

TEST(ShardedExecution, ChargedTimeAndResultsInvariantAcrossWorkers) {
  ScopedRepo repo("shard_workers", SixtyFourFileRepo());
  const SweepRun w1 = RunSweep(repo.root(), 1, 0, 4);
  const SweepRun w4 = RunSweep(repo.root(), 4, 0, 4);
  const SweepRun w8 = RunSweep(repo.root(), 8, 0, 4);

  ASSERT_FALSE(w1.rows.empty());
  EXPECT_EQ(w1.num_shards, 4u);
  EXPECT_EQ(w1.rows, w4.rows);
  EXPECT_EQ(w1.rows, w8.rows);
  // The acceptance bar: charged simulated time is a function of the shard
  // count, never of how many OS threads did the work.
  EXPECT_EQ(w1.disk_sim_nanos, w4.disk_sim_nanos);
  EXPECT_EQ(w1.disk_sim_nanos, w8.disk_sim_nanos);
  EXPECT_EQ(w1.net_sim_nanos, w4.net_sim_nanos);
  EXPECT_EQ(w1.net_sim_nanos, w8.net_sim_nanos);
  EXPECT_EQ(w1.parallel_sim_nanos, w4.parallel_sim_nanos);
  EXPECT_EQ(w1.parallel_sim_nanos, w8.parallel_sim_nanos);
  EXPECT_EQ(w1.quarantined, 0u);
  EXPECT_EQ(w4.quarantined, 0u);
  EXPECT_GT(w1.net_sim_nanos, 0u);  // the interconnect was actually modeled
}

TEST(ShardedExecution, PhysicalPoolSizeNeverShowsInChargedTime) {
  ScopedRepo repo("shard_pool", SixtyFourFileRepo());
  const SweepRun small = RunSweep(repo.root(), 4, 2, 4);
  const SweepRun large = RunSweep(repo.root(), 4, 8, 4);
  ASSERT_FALSE(small.rows.empty());
  EXPECT_EQ(small.rows, large.rows);
  EXPECT_EQ(small.disk_sim_nanos, large.disk_sim_nanos);
  EXPECT_EQ(small.net_sim_nanos, large.net_sim_nanos);
  EXPECT_EQ(small.parallel_sim_nanos, large.parallel_sim_nanos);
}

TEST(ShardedExecution, ShardedResultsMatchUnsharded) {
  ScopedRepo repo("shard_equiv", SixtyFourFileRepo());
  const SweepRun one = RunSweep(repo.root(), 4, 0, 1);
  const SweepRun four = RunSweep(repo.root(), 4, 0, 4);
  ASSERT_FALSE(one.rows.empty());
  EXPECT_EQ(one.rows, four.rows);
  EXPECT_EQ(one.num_shards, 1u);
  EXPECT_EQ(four.num_shards, 4u);
  // Unsharded queries never touch the interconnect.
  EXPECT_EQ(one.net_sim_nanos, 0u);
  EXPECT_GT(four.net_sim_nanos, 0u);
}

TEST(ShardedExecution, FaultStreamReplayIsBitIdentical) {
  ScopedRepo repo("shard_replay", SixtyFourFileRepo());
  const SweepRun a = RunSweep(repo.root(), 4, 0, 4, /*loss_rate=*/0.1,
                              /*seed=*/99);
  const SweepRun b = RunSweep(repo.root(), 1, 0, 4, /*loss_rate=*/0.1,
                              /*seed=*/99);
  ASSERT_FALSE(a.rows.empty());
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.disk_sim_nanos, b.disk_sim_nanos);
  EXPECT_EQ(a.net_sim_nanos, b.net_sim_nanos);
  // Losses made the interconnect strictly pricier than a clean run.
  const SweepRun clean = RunSweep(repo.root(), 4, 0, 4);
  EXPECT_GT(a.net_sim_nanos, clean.net_sim_nanos);
}

TEST(ShardedExecution, PerQueryShardCountIsClamped) {
  ScopedRepo repo("shard_clamp", TinyRepoOptions());
  DatabaseOptions opts;
  opts.shard.num_shards = 4;
  auto db = Database::Open(repo.root(), opts);
  DEX_ASSERT_OK(db);

  QueryOptions two;
  two.num_shards = 2;
  auto r2 = (*db)->Query(kPerStation, two);
  DEX_ASSERT_OK(r2);
  EXPECT_EQ(r2->stats.two_stage.num_shards, 2u);

  QueryOptions sixteen;
  sixteen.num_shards = 16;
  auto r16 = (*db)->Query(kPerStation, sixteen);
  DEX_ASSERT_OK(r16);
  EXPECT_EQ(r16->stats.two_stage.num_shards, 4u);

  // On an unsharded database a shard request degrades to the classic path.
  auto flat = Database::Open(repo.root(), {});
  DEX_ASSERT_OK(flat);
  QueryOptions eight;
  eight.num_shards = 8;
  auto r1 = (*flat)->Query(kPerStation, eight);
  DEX_ASSERT_OK(r1);
  EXPECT_EQ(r1->stats.two_stage.num_shards, 1u);
  EXPECT_EQ(r1->stats.two_stage.net_sim_nanos, 0u);
}

TEST(ShardedExecution, DeadShardYieldsDeterministicPartialResult) {
  ScopedRepo repo("shard_dead", SixtyFourFileRepo());
  DatabaseOptions opts;
  opts.shard.num_shards = 4;
  // Station-range partitioning: 4 stations on 4 shards — killing shard 1
  // removes exactly one station's 16 files.
  opts.shard.policy = ShardedRepository::Policy::kStationRange;

  auto run = [&](size_t workers) {
    DatabaseOptions o = opts;
    o.two_stage.num_threads = workers;
    auto db = Database::Open(repo.root(), o);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->shards()->KillShard(1).ok());
    return std::move(*db);
  };

  auto db1 = run(1);
  auto db8 = run(8);
  auto r1 = db1->Query(kPerStation);
  auto r8 = db8->Query(kPerStation);
  DEX_ASSERT_OK(r1);
  DEX_ASSERT_OK(r8);

  // Partial, with the dead shard's files skipped — identically at any
  // worker count.
  EXPECT_TRUE(r1->stats.two_stage.is_partial);
  EXPECT_EQ(r1->stats.two_stage.files_skipped_shard, 16u);
  EXPECT_EQ(r8->stats.two_stage.files_skipped_shard, 16u);
  EXPECT_EQ(CanonicalRows(*r1->table), CanonicalRows(*r8->table));
  // One station is gone from the aggregate.
  EXPECT_EQ(r1->table->num_rows(), 3u);

  // The degradation is visible in EXPLAIN ANALYZE's plan annotations.
  auto explain = db1->Query(std::string("EXPLAIN ANALYZE ") + kPerStation);
  DEX_ASSERT_OK(explain);
  std::string text;
  for (size_t r = 0; r < explain->table->num_rows(); ++r) {
    text += explain->table->column(0)->GetString(r);
    text += '\n';
  }
  EXPECT_NE(text.find("skipped on dead shards"), std::string::npos) << text;
  EXPECT_NE(text.find("shards: 4"), std::string::npos) << text;

  // Healing restores the full result.
  DEX_ASSERT_STATUS_OK(db1->shards()->HealShard(1));
  auto healed = db1->Query(kPerStation);
  DEX_ASSERT_OK(healed);
  EXPECT_FALSE(healed->stats.two_stage.is_partial);
  EXPECT_EQ(healed->table->num_rows(), 4u);
}

TEST(ShardedExecution, RefreshRunsShardedAndSeesNewFiles) {
  ScopedRepo repo("shard_refresh", TinyRepoOptions());
  DatabaseOptions opts;
  opts.shard.num_shards = 4;
  auto db = Database::Open(repo.root(), opts);
  DEX_ASSERT_OK(db);
  EXPECT_EQ((*db)->open_stats().num_shards, 4u);

  auto before = (*db)->Query("SELECT COUNT(*) FROM F");
  DEX_ASSERT_OK(before);
  const int64_t files_before = before->table->GetValue(0, 0).int64();

  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = "NEWSTA";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 1262304000000LL;
  rec.sample_rate_hz = 1.0;
  for (int i = 0; i < 20; ++i) rec.samples.push_back(i);
  DEX_ASSERT_STATUS_OK(
      mseed::WriteFile(repo.root() + "/NEWSTA/OR.NEWSTA.BHE.000.mseed", {rec}));

  auto refreshed = (*db)->Refresh();
  DEX_ASSERT_OK(refreshed);
  EXPECT_EQ(refreshed->files_added, 1u);
  EXPECT_EQ(refreshed->num_shards, 4u);
  EXPECT_GT(refreshed->net_sim_nanos, 0u);

  auto after = (*db)->Query("SELECT COUNT(*) FROM F");
  DEX_ASSERT_OK(after);
  EXPECT_EQ(after->table->GetValue(0, 0).int64(), files_before + 1);
}

}  // namespace
}  // namespace dex
