#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace dex::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("query.count"), 0u);
  reg.AddCounter("query.count", 1);
  reg.AddCounter("query.count", 2);
  EXPECT_EQ(reg.counter("query.count"), 3u);
}

TEST(MetricsRegistryTest, GaugesLastWriteWins) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.gauge("io.sim_nanos"), 0.0);
  reg.SetGauge("io.sim_nanos", 10.0);
  reg.SetGauge("io.sim_nanos", 7.5);
  EXPECT_EQ(reg.gauge("io.sim_nanos"), 7.5);
}

TEST(MetricsRegistryTest, HistogramSnapshotSummarizes) {
  MetricsRegistry reg;
  reg.Observe("query.total_seconds", 1.0);
  reg.Observe("query.total_seconds", 3.0);
  reg.Observe("query.total_seconds", 8.0);
  const HistogramSnapshot snap = reg.histogram("query.total_seconds");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 12.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  EXPECT_DOUBLE_EQ(snap.avg(), 4.0);

  const HistogramSnapshot empty = reg.histogram("missing");
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.avg(), 0.0);
}

TEST(MetricsRegistryTest, ToTextIsSortedByName) {
  MetricsRegistry reg;
  reg.AddCounter("b.second", 2);
  reg.AddCounter("a.first", 1);
  const std::string text = reg.ToText();
  const size_t a = text.find("a.first 1");
  const size_t b = text.find("b.second 2");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(b, std::string::npos) << text;
  EXPECT_LT(a, b);
}

TEST(MetricsRegistryTest, ToJsonHasAllThreeSections) {
  MetricsRegistry reg;
  reg.AddCounter("mount.mounts", 4);
  reg.SetGauge("cache.hits", 2);
  reg.Observe("stage.files_of_interest_per_query", 8.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mount.mounts\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache.hits\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage.files_of_interest_per_query\""),
            std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, ClearResetsEverything) {
  MetricsRegistry reg;
  reg.AddCounter("c", 1);
  reg.SetGauge("g", 1);
  reg.Observe("h", 1);
  reg.Clear();
  EXPECT_EQ(reg.counter("c"), 0u);
  EXPECT_EQ(reg.gauge("g"), 0.0);
  EXPECT_EQ(reg.histogram("h").count, 0u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dex::obs
