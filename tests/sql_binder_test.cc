#include "sql/binder.h"

#include <gtest/gtest.h>

#include "core/seismic_schema.h"
#include "io/sim_disk.h"

namespace dex {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : disk_(), catalog_(&disk_) {
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("F", MakeFileSchema()),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("R", MakeRecordSchema()),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("D", MakeDataSchema()),
                              TableKind::kActual)
                    .ok());
  }

  PlanPtr MustPlan(const std::string& sql) {
    auto r = sql::PlanQuery(sql, catalog_);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ValueOr(nullptr);
  }

  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(BinderTest, SelectStarIsPlainScan) {
  const PlanPtr p = MustPlan("SELECT * FROM F");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanKind::kScan);
  EXPECT_EQ(p->output_schema->num_fields(), 8u);
}

TEST_F(BinderTest, ProjectionNamesAndTypes) {
  const PlanPtr p = MustPlan("SELECT station, size_bytes AS sz FROM F");
  ASSERT_EQ(p->kind, PlanKind::kProject);
  EXPECT_EQ(p->output_schema->field(0).name, "station");
  EXPECT_EQ(p->output_schema->field(1).name, "sz");
  EXPECT_EQ(p->output_schema->field(1).type, DataType::kInt64);
}

TEST_F(BinderTest, QualifiedColumnNameStripsQualifierInOutput) {
  const PlanPtr p = MustPlan("SELECT D.sample_time, D.sample_value FROM D");
  EXPECT_EQ(p->output_schema->field(0).name, "sample_time");
  EXPECT_EQ(p->output_schema->field(1).name, "sample_value");
}

TEST_F(BinderTest, WhereBecomesFilter) {
  const PlanPtr p = MustPlan("SELECT * FROM F WHERE station = 'ISK'");
  ASSERT_EQ(p->kind, PlanKind::kFilter);
  EXPECT_EQ(p->children[0]->kind, PlanKind::kScan);
}

TEST_F(BinderTest, JoinsAreLeftDeepInSqlOrder) {
  const PlanPtr p = MustPlan(
      "SELECT * FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id");
  ASSERT_EQ(p->kind, PlanKind::kJoin);
  EXPECT_EQ(p->children[1]->table_name, "D");
  ASSERT_EQ(p->children[0]->kind, PlanKind::kJoin);
  EXPECT_EQ(p->children[0]->children[0]->table_name, "F");
  EXPECT_EQ(p->children[0]->children[1]->table_name, "R");
}

TEST_F(BinderTest, AggregateAddsProjectOnTop) {
  const PlanPtr p = MustPlan("SELECT AVG(D.sample_value) FROM D");
  ASSERT_EQ(p->kind, PlanKind::kProject);
  ASSERT_EQ(p->children[0]->kind, PlanKind::kAggregate);
  EXPECT_EQ(p->output_schema->field(0).name, "AVG(D.sample_value)");
  EXPECT_EQ(p->output_schema->field(0).type, DataType::kDouble);
}

TEST_F(BinderTest, GroupByWithMixedItems) {
  const PlanPtr p = MustPlan(
      "SELECT station, COUNT(*) AS n FROM F GROUP BY station");
  ASSERT_EQ(p->kind, PlanKind::kProject);
  const PlanPtr& agg = p->children[0];
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_EQ(agg->group_by.size(), 1u);
  EXPECT_EQ(agg->aggregates.size(), 1u);
  EXPECT_EQ(p->output_schema->field(1).name, "n");
}

TEST_F(BinderTest, NonGroupedColumnRejected) {
  auto r = sql::PlanQuery("SELECT station, COUNT(*) FROM F GROUP BY channel",
                          catalog_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, SelectStarWithGroupByRejected) {
  EXPECT_FALSE(sql::PlanQuery("SELECT * FROM F GROUP BY station", catalog_).ok());
}

TEST_F(BinderTest, OrderByMapsToOutputColumns) {
  const PlanPtr p = MustPlan(
      "SELECT F.station AS st, COUNT(*) AS n FROM F GROUP BY F.station "
      "ORDER BY st");
  ASSERT_EQ(p->kind, PlanKind::kSort);
}

TEST_F(BinderTest, OrderByQualifiedNameOverProjection) {
  const PlanPtr p =
      MustPlan("SELECT F.station FROM F ORDER BY F.station DESC");
  ASSERT_EQ(p->kind, PlanKind::kSort);
  EXPECT_FALSE(p->sort_keys[0].ascending);
}

TEST_F(BinderTest, LimitOnTop) {
  const PlanPtr p = MustPlan("SELECT * FROM F LIMIT 3");
  ASSERT_EQ(p->kind, PlanKind::kLimit);
  EXPECT_EQ(p->limit, 3);
}

TEST_F(BinderTest, FullClauseStack) {
  const PlanPtr p = MustPlan(
      "SELECT station, COUNT(*) AS n FROM F WHERE network = 'OR' "
      "GROUP BY station ORDER BY n DESC LIMIT 5");
  ASSERT_EQ(p->kind, PlanKind::kLimit);
  ASSERT_EQ(p->children[0]->kind, PlanKind::kSort);
  ASSERT_EQ(p->children[0]->children[0]->kind, PlanKind::kProject);
}

TEST_F(BinderTest, UnknownTableRejected) {
  EXPECT_TRUE(sql::PlanQuery("SELECT * FROM Zed", catalog_).status().IsNotFound());
  EXPECT_TRUE(sql::PlanQuery("SELECT * FROM F JOIN Zed ON F.uri = Zed.uri",
                             catalog_)
                  .status()
                  .IsNotFound());
}

TEST_F(BinderTest, UnknownColumnRejectedAtAnalysis) {
  EXPECT_FALSE(sql::PlanQuery("SELECT ghost FROM F", catalog_).ok());
  EXPECT_FALSE(
      sql::PlanQuery("SELECT * FROM F WHERE ghost = 1", catalog_).ok());
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  // Both F and R have "uri".
  EXPECT_FALSE(
      sql::PlanQuery("SELECT uri FROM F JOIN R ON F.uri = R.uri", catalog_)
          .ok());
}

TEST_F(BinderTest, PaperQuery1PlanShape) {
  const PlanPtr p = MustPlan(R"(
      SELECT AVG(D.sample_value)
      FROM F JOIN R ON F.uri = R.uri
             JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
      WHERE F.station = 'ISK' AND F.channel = 'BHE'
        AND R.start_time > '2010-01-12T00:00:00.000'
        AND R.start_time < '2010-01-12T23:59:59.999'
        AND D.sample_time > '2010-01-12T22:15:00.000'
        AND D.sample_time < '2010-01-12T22:15:02.000')");
  // Project <- Aggregate <- Filter <- Join shape before optimization.
  ASSERT_EQ(p->kind, PlanKind::kProject);
  ASSERT_EQ(p->children[0]->kind, PlanKind::kAggregate);
  ASSERT_EQ(p->children[0]->children[0]->kind, PlanKind::kFilter);
  ASSERT_EQ(p->children[0]->children[0]->children[0]->kind, PlanKind::kJoin);
}

}  // namespace
}  // namespace dex
