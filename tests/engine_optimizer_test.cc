#include "engine/optimizer.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "io/sim_disk.h"

namespace dex {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : disk_(), catalog_(&disk_) {
    auto f_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "F"},
                {"station", DataType::kString, "F"}}));
    auto f = std::make_shared<Table>("F", f_schema);
    EXPECT_TRUE(f->AppendRow({Value::String("u1"), Value::String("ISK")}).ok());
    EXPECT_TRUE(f->AppendRow({Value::String("u2"), Value::String("ANK")}).ok());
    EXPECT_TRUE(catalog_.AddTable(f, TableKind::kMetadata).ok());

    auto d_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "D"},
                {"value", DataType::kDouble, "D"}}));
    auto d = std::make_shared<Table>("D", d_schema);
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(d->AppendRow({Value::String(i < 3 ? "u1" : "u2"),
                                Value::Double(i * 1.0)})
                      .ok());
    }
    EXPECT_TRUE(catalog_.AddTable(d, TableKind::kActual).ok());
  }

  Result<TablePtr> Run(const PlanPtr& plan) {
    ExecContext ctx;
    ctx.catalog = &catalog_;
    return ExecutePlan(plan, &ctx);
  }

  static ExprPtr StationIsIsk() {
    return Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.station"),
                         Expr::Lit(Value::String("ISK")));
  }
  static ExprPtr ValuePositive() {
    return Expr::Compare(CompareOp::kGt, Expr::ColumnRef("D.value"),
                         Expr::Lit(Value::Int64(0)));
  }
  static ExprPtr UriMatch() {
    return Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.uri"),
                         Expr::ColumnRef("D.uri"));
  }

  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(OptimizerTest, FilterSinksToitsSide) {
  // σ_{station ∧ value}(F ⋈ D) → σ_station(F) ⋈ σ_value(D).
  PlanPtr plan = MakeFilter(Expr::And(StationIsIsk(), ValuePositive()),
                            MakeJoin(UriMatch(), MakeScan("F"), MakeScan("D")));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  const PlanPtr& join = *optimized;
  ASSERT_EQ(join->kind, PlanKind::kJoin);
  EXPECT_EQ(join->children[0]->kind, PlanKind::kFilter);
  EXPECT_EQ(join->children[0]->children[0]->table_name, "F");
  EXPECT_EQ(join->children[1]->kind, PlanKind::kFilter);
  EXPECT_EQ(join->children[1]->children[0]->table_name, "D");
}

TEST_F(OptimizerTest, PushdownPreservesResults) {
  PlanPtr plan = MakeFilter(Expr::And(StationIsIsk(), ValuePositive()),
                            MakeJoin(UriMatch(), MakeScan("F"), MakeScan("D")));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto before = Run(plan);
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  auto after = Run(*optimized);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*before)->num_rows(), (*after)->num_rows());
  EXPECT_EQ((*before)->num_rows(), 2u);  // u1 rows with value > 0
}

TEST_F(OptimizerTest, CrossSidePredicateMergesIntoJoin) {
  // A filter referencing both sides cannot sink; it joins the ON condition.
  const ExprPtr cross = Expr::Compare(CompareOp::kNe, Expr::ColumnRef("F.uri"),
                                      Expr::ColumnRef("D.uri"));
  PlanPtr plan = MakeFilter(
      cross, MakeJoin(UriMatch(), MakeScan("F"), MakeScan("D")));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ((*optimized)->kind, PlanKind::kJoin);
  EXPECT_NE((*optimized)->predicate->ToString().find("<>"), std::string::npos);
  auto r = Run(*optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 0u);  // equal AND not-equal is unsatisfiable
}

TEST_F(OptimizerTest, AdjacentFiltersCollapse) {
  PlanPtr plan = MakeFilter(StationIsIsk(),
                            MakeFilter(StationIsIsk(), MakeScan("F")));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  // One filter over the scan, not two.
  EXPECT_EQ((*optimized)->kind, PlanKind::kFilter);
  EXPECT_EQ((*optimized)->children[0]->kind, PlanKind::kScan);
}

TEST_F(OptimizerTest, FilterStopsAboveAggregate) {
  PlanPtr agg = MakeAggregate({Expr::ColumnRef("station")},
                              {{AggFunc::kCount, nullptr, "n"}}, MakeScan("F"));
  PlanPtr plan = MakeFilter(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("n"),
                    Expr::Lit(Value::Int64(0))),
      agg);
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ((*optimized)->kind, PlanKind::kFilter);
  EXPECT_EQ((*optimized)->children[0]->kind, PlanKind::kAggregate);
}

TEST_F(OptimizerTest, FiltersPushThroughUnions) {
  PlanPtr plan = MakeFilter(ValuePositive(),
                            MakeUnion({MakeScan("D"), MakeScan("D")}));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind, PlanKind::kUnion);
  for (const PlanPtr& child : (*optimized)->children) {
    EXPECT_EQ(child->kind, PlanKind::kFilter);
  }
  auto r = Run(*optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 10u);  // 5 positive rows, twice
}

TEST_F(OptimizerTest, PushSelectionsIntoUnionsRule) {
  // The run-time rewrite: σ_p(∪ b_i) → ∪ σ_p(b_i).
  PlanPtr plan = MakeFilter(ValuePositive(),
                            MakeUnion({MakeScan("D"), MakeScan("D")}));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto rewritten = PushSelectionsIntoUnions(plan, catalog_);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_EQ((*rewritten)->kind, PlanKind::kUnion);
  EXPECT_EQ((*rewritten)->children[0]->kind, PlanKind::kFilter);
}

TEST_F(OptimizerTest, OnConditionSingleSideConjunctsSink) {
  // ON (uri match AND station='ISK'): the station conjunct sinks to F.
  const ExprPtr cond = Expr::And(UriMatch(), StationIsIsk());
  PlanPtr plan = MakeJoin(cond, MakeScan("F"), MakeScan("D"));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto optimized = PushDownPredicates(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind, PlanKind::kJoin);
  EXPECT_EQ((*optimized)->children[0]->kind, PlanKind::kFilter)
      << (*optimized)->ToString();
  auto r = Run(*optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3u);
}

}  // namespace
}  // namespace dex
