// Dimensional telemetry + flight recorder: labeled metric series, histogram
// percentiles, cardinality bounds, and the determinism contract for flight
// dumps — byte-identical across worker counts at a fixed shard count, and
// (sim-stripped) across shard counts.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace dex {
namespace {

using obs::FlightEvent;
using obs::FlightRecorder;
using obs::MetricLabels;
using obs::MetricsRegistry;

TEST(MetricLabels, RenderIsCanonicalAndOrderFixed) {
  MetricLabels labels;
  EXPECT_TRUE(labels.empty());
  EXPECT_EQ(labels.Render(), "");

  labels.shard = 3;
  labels.session = "shell";
  labels.priority = 2;
  labels.query = "probe";
  EXPECT_FALSE(labels.empty());
  // Fixed field order regardless of assignment order.
  EXPECT_EQ(labels.Render(), "{priority=2,query=probe,session=shell,shard=3}");

  MetricLabels partial;
  partial.session = "bench";
  EXPECT_EQ(partial.Render(), "{session=bench}");
}

TEST(MetricLabels, ValuesAreSanitized) {
  MetricLabels labels;
  labels.session = "we{ird,na=me}\n";
  obs::ScopedMetricsReset reset;
  MetricsRegistry::Global().AddCounter("t.sanitize", labels, 1);
  const std::string text = MetricsRegistry::Global().ToText();
  EXPECT_NE(text.find("t.sanitize{session=we_ird_na_me__}"), std::string::npos)
      << text;
}

TEST(MetricsRegistry, LabeledCountersUpdateBaseAndLabeledSeries) {
  obs::ScopedMetricsReset reset;
  auto& m = MetricsRegistry::Global();
  MetricLabels a;
  a.session = "a";
  MetricLabels b;
  b.session = "b";
  m.AddCounter("t.count", a, 3);
  m.AddCounter("t.count", b, 4);
  m.AddCounter("t.count", 1);  // unlabeled update, lands only in the base
  EXPECT_EQ(m.counter("t.count", a), 3u);
  EXPECT_EQ(m.counter("t.count", b), 4u);
  EXPECT_EQ(m.counter("t.count"), 8u);  // base carries the total
}

TEST(MetricsRegistry, LabeledGaugesAreLabeledOnly) {
  obs::ScopedMetricsReset reset;
  auto& m = MetricsRegistry::Global();
  MetricLabels s0;
  s0.shard = 0;
  m.SetGauge("t.gauge", s0, 7.0);
  EXPECT_EQ(m.gauge("t.gauge", s0), 7.0);
  EXPECT_EQ(m.gauge("t.gauge"), 0.0);  // gauges are not summable
}

TEST(MetricsRegistry, LabeledHistogramsUpdateBaseAndLabeled) {
  obs::ScopedMetricsReset reset;
  auto& m = MetricsRegistry::Global();
  MetricLabels p;
  p.priority = 1;
  m.Observe("t.wait", p, 100.0);
  m.Observe("t.wait", p, 200.0);
  EXPECT_EQ(m.histogram("t.wait", p).count, 2u);
  EXPECT_EQ(m.histogram("t.wait").count, 2u);
  EXPECT_EQ(m.histogram("t.wait").sum, 300.0);
}

TEST(MetricsRegistry, HistogramPercentilesFromBuckets) {
  obs::ScopedMetricsReset reset;
  auto& m = MetricsRegistry::Global();
  // A constant distribution: every percentile is clamped to min == max.
  for (int i = 0; i < 100; ++i) m.Observe("t.const", 42.0);
  obs::HistogramSnapshot h = m.histogram("t.const");
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.p50(), 42.0);
  EXPECT_EQ(h.p95(), 42.0);
  EXPECT_EQ(h.p99(), 42.0);

  // A spread distribution: percentiles are monotone, inside [min, max], and
  // the log2 buckets put p99 well above p50.
  for (int i = 1; i <= 1000; ++i) m.Observe("t.spread", static_cast<double>(i));
  h = m.histogram("t.spread");
  EXPECT_EQ(h.count, 1000u);
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_GE(h.p50(), h.min);
  EXPECT_LE(h.p99(), h.max);
  // Factor-of-two resolution around the true medians.
  EXPECT_GT(h.p50(), 250.0);
  EXPECT_LT(h.p50(), 1000.0);
  EXPECT_GT(h.p99(), 500.0);

  // Empty histogram: all zeros, no division by zero.
  EXPECT_EQ(m.histogram("t.absent").p99(), 0.0);

  // The text dump renders the percentile columns.
  const std::string text = m.ToText();
  EXPECT_NE(text.find("p50="), std::string::npos) << text;
  EXPECT_NE(text.find("p99="), std::string::npos) << text;
}

TEST(MetricsRegistry, LabelCardinalityBoundFoldsToBase) {
  obs::ScopedMetricsReset reset;
  auto& m = MetricsRegistry::Global();
  const size_t attempts = MetricsRegistry::kMaxLabelSetsPerName + 8;
  for (size_t i = 0; i < attempts; ++i) {
    MetricLabels l;
    l.session = "s" + std::to_string(i);
    m.AddCounter("t.burst", l, 1);
  }
  // Base total is exact regardless of folding.
  EXPECT_EQ(m.counter("t.burst"), attempts);
  // The first kMaxLabelSetsPerName sets exist; the rest folded.
  MetricLabels first;
  first.session = "s0";
  EXPECT_EQ(m.counter("t.burst", first), 1u);
  MetricLabels overflow;
  overflow.session = "s" + std::to_string(attempts - 1);
  EXPECT_EQ(m.counter("t.burst", overflow), 0u);
  EXPECT_EQ(m.counter("obs.labels_dropped"), 8u);
}

TEST(MetricsRegistry, ScopedResetClearsOnEntryAndExit) {
  auto& m = MetricsRegistry::Global();
  m.AddCounter("t.leak", 5);
  {
    obs::ScopedMetricsReset reset;
    EXPECT_EQ(m.counter("t.leak"), 0u);  // cleared on entry
    m.AddCounter("t.leak", 3);
  }
  EXPECT_EQ(m.counter("t.leak"), 0u);  // cleared on exit
}

TEST(FlightRecorder, RecordsSortsAndBoundsTheRing) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  FlightEvent e;
  e.kind = "epoch_publish";
  e.detail = "epoch 2";
  rec.Record(std::move(e));
  FlightEvent e2;
  e2.kind = "quarantine";
  e2.shard = 1;
  rec.Record(std::move(e2));
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "epoch_publish");
  EXPECT_EQ(events[1].kind, "quarantine");
  EXPECT_EQ(events[1].shard, 1);

  // The ring overwrites its oldest entries past the capacity.
  rec.Clear();
  const size_t extra = 76;
  for (size_t i = 0; i < FlightRecorder::kDefaultCapacity + extra; ++i) {
    FlightEvent ev;
    ev.kind = "tick";
    rec.Record(std::move(ev));
  }
  EXPECT_EQ(rec.Snapshot().size(), FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(rec.dropped(), extra);
  rec.Clear();
}

TEST(FlightRecorder, DisabledRecorderDropsEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  rec.set_enabled(false);
  FlightEvent e;
  e.kind = "tick";
  rec.Record(std::move(e));
  EXPECT_TRUE(rec.Snapshot().empty());
  rec.set_enabled(true);
}

TEST(FlightRecorder, AutoDumpWritesJsonOnlyWithAPath) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  rec.set_dump_path("");
  FlightEvent e;
  e.kind = "shed";
  e.session = "s1";
  e.priority = 2;
  rec.Record(std::move(e));
  EXPECT_FALSE(rec.AutoDump("no path set"));

  const std::string path =
      "/tmp/dex_flight_dump_" + std::to_string(::getpid()) + ".json";
  rec.set_dump_path(path);
  EXPECT_TRUE(rec.AutoDump("unit trigger"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  EXPECT_NE(body.find("\"trigger\": \"unit trigger\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\": \"shed\""), std::string::npos);
  EXPECT_NE(body.find("\"session\": \"s1\""), std::string::npos);
  std::remove(path.c_str());
  rec.set_dump_path("");
  rec.Clear();
}

TEST(FlightRecorder, ConcurrentPublicationIsSafeAndTotalsAdd) {
  obs::ScopedMetricsReset reset;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  auto& m = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, &rec, t] {
      MetricLabels l;
      l.session = "w" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        m.AddCounter("t.concurrent", l, 1);
        m.Observe("t.conc_wait", l, static_cast<double>(i));
        FlightEvent e;
        e.kind = "tick";
        e.session = l.session;
        rec.Record(std::move(e));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.counter("t.concurrent"),
            static_cast<uint64_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    MetricLabels l;
    l.session = "w" + std::to_string(t);
    EXPECT_EQ(m.counter("t.concurrent", l), static_cast<uint64_t>(kPerThread));
  }
  EXPECT_EQ(m.histogram("t.conc_wait").count,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.Snapshot().size(), FlightRecorder::kDefaultCapacity);
  rec.Clear();
}

// ---------------------------------------------------------------------------
// The determinism contract (DESIGN.md §8.12): the flight dump and the
// deterministic labeled-metric totals are byte-identical at any worker
// count for a fixed shard count; stripped of simulated timestamps, the
// event stream is also identical across shard counts.

struct TelemetryCapture {
  std::string flight_json;
  std::string metrics_digest;
};

/// The simulated-time-deterministic slice of the registry: counts, charged
/// sim time, and labeled series — no wall-clock-valued metrics.
std::string DeterministicMetricsDigest(const MetricLabels& query_labels,
                                       int num_shards) {
  auto& m = MetricsRegistry::Global();
  std::ostringstream out;
  for (const char* name :
       {"query.count", "query.result_rows", "query.sim_io_nanos",
        "stage.files_of_interest", "stage.files_planned_mount",
        "stage.files_quarantined", "stage.mount_tasks",
        "stage.parallel_sim_nanos", "stage.serial_sim_nanos",
        "shard.sharded_queries", "shard.net_sim_nanos",
        "shard.files_skipped_shard", "governance.partial_queries",
        "mount.mounts", "mount.records_decoded", "mount.bytes_read",
        "fault.files_failed", "exec.rows_scanned", "exec.rows_output"}) {
    out << name << "=" << m.counter(name) << "\n";
  }
  out << "query.count" << query_labels.Render() << "="
      << m.counter("query.count", query_labels) << "\n";
  out << "io.sim_nanos=" << m.gauge("io.sim_nanos") << "\n";
  for (int s = 0; s < num_shards; ++s) {
    MetricLabels l;
    l.shard = s;
    out << "shard.net_messages" << l.Render() << "="
        << m.gauge("shard.net_messages", l) << "\n";
    out << "shard.net_bytes" << l.Render() << "="
        << m.gauge("shard.net_bytes", l) << "\n";
  }
  return out.str();
}

/// One deterministic mixed workload: queries, a refresh (epoch publish), a
/// shard kill/heal cycle, and a failing statement. Telemetry state is fully
/// reset before the run, so repeated invocations start from byte-equal
/// initial conditions.
TelemetryCapture RunTelemetryWorkload(const std::string& root, size_t workers,
                                      int num_shards, bool include_sim) {
  obs::Tracer::ResetIdsForTesting();
  // Reset this thread's task-scope sequence so coordinator events re-number
  // from zero each run.
  obs::TaskTraceScope seq_reset(0, 0);
  obs::ScopedMetricsReset metrics_reset;
  FlightRecorder::Global().Clear();

  DatabaseOptions options;
  options.shard.num_shards = num_shards;
  options.two_stage.num_threads = workers;
  auto db_or = Database::Open(root, options);
  EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);

  QueryOptions qopts;
  qopts.session = "determinism";
  qopts.query_label = "probe";

  MetricLabels query_labels;
  query_labels.session = qopts.session;
  query_labels.query = qopts.query_label;
  query_labels.priority = qopts.priority;

  auto r1 = db->Query(
      "SELECT F.station, COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "GROUP BY F.station ORDER BY F.station",
      qopts);
  EXPECT_TRUE(r1.ok()) << r1.status().ToString();

  auto refresh = db->Refresh();
  EXPECT_TRUE(refresh.ok()) << refresh.status().ToString();

  EXPECT_TRUE(db->shards()->KillShard(0).ok());
  auto r2 = db->Query("SELECT COUNT(*) FROM D", qopts);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(db->shards()->HealShard(0).ok());

  auto bad = db->Query("SELECT nope FROM nothing", qopts);
  EXPECT_FALSE(bad.ok());

  TelemetryCapture capture;
  capture.flight_json = FlightRecorder::Global().ToJson(include_sim);
  capture.metrics_digest = DeterministicMetricsDigest(query_labels, num_shards);
  return capture;
}

TEST(TelemetryDeterminism, DumpAndTotalsIdenticalAcrossWorkerCounts) {
  testing::ScopedRepo repo("obs_workers");
  const int kShards = 4;
  const TelemetryCapture base =
      RunTelemetryWorkload(repo.root(), 1, kShards, /*include_sim=*/true);
  EXPECT_NE(base.flight_json.find("epoch_publish"), std::string::npos)
      << base.flight_json;
  EXPECT_NE(base.flight_json.find("shard_kill"), std::string::npos);
  EXPECT_NE(base.flight_json.find("query_failure"), std::string::npos);
  for (size_t workers : {4u, 8u}) {
    const TelemetryCapture other =
        RunTelemetryWorkload(repo.root(), workers, kShards, true);
    EXPECT_EQ(base.flight_json, other.flight_json)
        << "flight dump diverged at workers=" << workers;
    EXPECT_EQ(base.metrics_digest, other.metrics_digest)
        << "metric totals diverged at workers=" << workers;
  }
}

TEST(TelemetryDeterminism, SimStrippedDumpIdenticalAcrossShardCounts) {
  testing::ScopedRepo repo("obs_shards");
  // Charged sim time legitimately varies with the shard count (network
  // charges scale with the topology), so the cross-shard-count invariant is
  // the *semantic* stream: same events, same order, sim timestamps stripped.
  const TelemetryCapture base =
      RunTelemetryWorkload(repo.root(), 4, 1, /*include_sim=*/false);
  for (int shards : {2, 4}) {
    const TelemetryCapture other =
        RunTelemetryWorkload(repo.root(), 4, shards, false);
    EXPECT_EQ(base.flight_json, other.flight_json)
        << "semantic flight dump diverged at shards=" << shards;
  }
}

}  // namespace
}  // namespace dex
