// SimNetwork: the simulated shard interconnect. Costs must follow the
// latency+bandwidth model exactly, charge into the shared SimDisk clock
// (honoring TaskTimeScope buckets), and the seeded per-link fault streams
// must replay bit-identically — the transport-level half of the sharded
// executor's determinism contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "io/sim_disk.h"
#include "net/sim_network.h"
#include "test_util.h"

namespace dex {
namespace {

SimNetwork::Options FastNet() {
  SimNetwork::Options net;
  net.latency_micros = 50.0;          // 50'000 ns per message
  net.bandwidth_mb_per_sec = 1000.0;  // 1 byte = 1 ns
  return net;
}

TEST(SimNetwork, MessageCostIsLatencyPlusBytesOverBandwidth) {
  SimDisk disk;
  SimNetwork net(&disk, FastNet());
  // At 1000 MB/s one byte costs exactly one nanosecond, so the arithmetic
  // is auditable by eye: 50us latency + payload nanos.
  EXPECT_EQ(net.MessageCost(0), 50'000u);
  EXPECT_EQ(net.MessageCost(1'000), 51'000u);
  EXPECT_EQ(net.MessageCost(1'000'000), 1'050'000u);
  // MessageCost is a planning helper: nothing was charged.
  EXPECT_EQ(disk.stats().sim_nanos, 0u);
}

TEST(SimNetwork, TransferChargesTheSharedClock) {
  SimDisk disk;
  SimNetwork net(&disk, FastNet());
  const SimNetwork::LinkId link = net.AddLink("shard-0");

  const uint64_t before = disk.stats().sim_nanos;
  auto nanos = net.Transfer(link, 4'096);
  ASSERT_TRUE(nanos.ok()) << nanos.status().ToString();
  EXPECT_EQ(*nanos, net.MessageCost(4'096));
  EXPECT_EQ(disk.stats().sim_nanos, before + *nanos);

  auto stats = net.link_stats(link);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->messages, 1u);
  EXPECT_EQ(stats->bytes, 4'096u);
  EXPECT_EQ(stats->sim_nanos, *nanos);
  EXPECT_EQ(stats->resends, 0u);
  EXPECT_FALSE(stats->failed);
}

TEST(SimNetwork, TaskTimeScopeRoutesTransferCharges) {
  SimDisk disk;
  SimNetwork net(&disk, FastNet());
  const SimNetwork::LinkId link = net.AddLink("shard-0");

  // Under a TaskTimeScope the charge lands in the task's bucket, not the
  // global clock — exactly how the sharded gather aggregates per-shard net
  // cost before charging the deterministic wave maximum.
  uint64_t bucket = 0;
  const uint64_t global_before = disk.stats().sim_nanos;
  {
    SimDisk::TaskTimeScope scope(&bucket);
    auto nanos = net.Transfer(link, 1'000);
    ASSERT_TRUE(nanos.ok());
    EXPECT_EQ(bucket, *nanos);
  }
  EXPECT_EQ(disk.stats().sim_nanos, global_before);

  // Outside the scope the charge goes back to the global clock.
  auto nanos = net.Transfer(link, 1'000);
  ASSERT_TRUE(nanos.ok());
  EXPECT_EQ(disk.stats().sim_nanos, global_before + *nanos);
}

TEST(SimNetwork, FailedLinkRefusesTransfersUntilHealed) {
  SimDisk disk;
  SimNetwork net(&disk, FastNet());
  const SimNetwork::LinkId link = net.AddLink("shard-0");

  DEX_ASSERT_STATUS_OK(net.FailLink(link));
  EXPECT_TRUE(net.IsFailed(link));
  auto refused = net.Transfer(link, 100);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsIOError()) << refused.status().ToString();
  // A dead link costs nothing: planning skips the shard, it does not pay to
  // talk to it.
  EXPECT_EQ(disk.stats().sim_nanos, 0u);

  DEX_ASSERT_STATUS_OK(net.HealLink(link));
  EXPECT_FALSE(net.IsFailed(link));
  DEX_ASSERT_OK(net.Transfer(link, 100));

  // Out-of-range links are rejected, not UB.
  EXPECT_FALSE(net.FailLink(99).ok());
  EXPECT_FALSE(net.Transfer(99, 1).ok());
}

/// Runs the same transfer schedule and returns the per-transfer charges.
std::vector<uint64_t> Replay(uint64_t seed, double loss_rate) {
  SimDisk disk;
  SimNetwork::Options opts = FastNet();
  opts.fault_seed = seed;
  opts.transient_loss_rate = loss_rate;
  SimNetwork net(&disk, opts);
  const SimNetwork::LinkId a = net.AddLink("shard-0");
  const SimNetwork::LinkId b = net.AddLink("shard-1");
  std::vector<uint64_t> charges;
  for (int i = 0; i < 64; ++i) {
    auto n = net.Transfer(i % 2 == 0 ? a : b, 256 + 64 * i);
    charges.push_back(n.ok() ? *n : 0);
  }
  return charges;
}

TEST(SimNetwork, FaultStreamsReplayBitIdentically) {
  const std::vector<uint64_t> run1 = Replay(42, 0.2);
  const std::vector<uint64_t> run2 = Replay(42, 0.2);
  EXPECT_EQ(run1, run2);

  // The loss model actually fired: some transfer cost more than its
  // fault-free price (resend backoff + re-send).
  const std::vector<uint64_t> clean = Replay(42, 0.0);
  EXPECT_NE(run1, clean);

  // A different seed draws a different schedule.
  EXPECT_NE(run1, Replay(43, 0.2));
}

TEST(SimNetwork, PerLinkStreamsAreIndependent) {
  // The fate of the k-th transfer on a link must depend only on
  // (seed, link, k) — inserting traffic on link A must not perturb link B's
  // schedule. Interleave A-traffic in one run and not the other.
  SimDisk disk1, disk2;
  SimNetwork::Options opts = FastNet();
  opts.fault_seed = 7;
  opts.transient_loss_rate = 0.3;
  SimNetwork with_noise(&disk1, opts);
  SimNetwork without(&disk2, opts);
  const SimNetwork::LinkId a1 = with_noise.AddLink("shard-0");
  const SimNetwork::LinkId b1 = with_noise.AddLink("shard-1");
  (void)without.AddLink("shard-0");
  const SimNetwork::LinkId b2 = without.AddLink("shard-1");

  std::vector<uint64_t> noisy, quiet;
  for (int i = 0; i < 32; ++i) {
    (void)with_noise.Transfer(a1, 1'000);  // extra traffic on link A only
    auto n1 = with_noise.Transfer(b1, 512);
    auto n2 = without.Transfer(b2, 512);
    noisy.push_back(n1.ok() ? *n1 : 0);
    quiet.push_back(n2.ok() ? *n2 : 0);
  }
  EXPECT_EQ(noisy, quiet);
}

TEST(SimNetwork, ResendExhaustionFailsButStillChargesTime) {
  SimDisk disk;
  SimNetwork::Options opts = FastNet();
  opts.fault_seed = 1;
  opts.transient_loss_rate = 1.0;  // every attempt is lost
  opts.max_resends = 3;
  SimNetwork net(&disk, opts);
  const SimNetwork::LinkId link = net.AddLink("shard-0");

  auto r = net.Transfer(link, 1'000);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
  // The attempts took simulated time even though the transfer failed.
  EXPECT_GT(disk.stats().sim_nanos, net.MessageCost(1'000));
  auto stats = net.link_stats(link);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resends, 3u);
}

}  // namespace
}  // namespace dex
