#include "storage/table.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

SchemaPtr TwoColSchema() {
  return std::make_shared<Schema>(Schema(
      {{"name", DataType::kString, "T"}, {"n", DataType::kInt64, "T"}}));
}

TEST(TableTest, StartsEmptyWithColumnsMatchingSchema) {
  Table t("T", TwoColSchema());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.column(0)->type(), DataType::kString);
  EXPECT_EQ(t.column(1)->type(), DataType::kInt64);
}

TEST(TableTest, AppendRowAndGet) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::Int64(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("b"), Value::Int64(2)}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(1, 0).str(), "b");
  EXPECT_EQ(t.GetValue(0, 1).int64(), 1);
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t("T", TwoColSchema());
  EXPECT_TRUE(t.AppendRow({Value::String("a")}).IsInvalidArgument());
}

TEST(TableTest, AppendRowTypeMismatchNamesColumn) {
  Table t("T", TwoColSchema());
  const Status s = t.AppendRow({Value::Int64(1), Value::Int64(2)});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'name'"), std::string::npos);
}

TEST(TableTest, AppendTable) {
  Table a("A", TwoColSchema());
  ASSERT_TRUE(a.AppendRow({Value::String("x"), Value::Int64(1)}).ok());
  Table b("B", TwoColSchema());
  ASSERT_TRUE(b.AppendRow({Value::String("y"), Value::Int64(2)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::String("z"), Value::Int64(3)}).ok());
  ASSERT_TRUE(a.AppendTable(b).ok());
  EXPECT_EQ(a.num_rows(), 3u);
  EXPECT_EQ(a.GetValue(2, 0).str(), "z");
}

TEST(TableTest, AppendTableSchemaMismatch) {
  Table a("A", TwoColSchema());
  Table c("C", std::make_shared<Schema>(
                   Schema({{"only", DataType::kInt64, "C"}})));
  EXPECT_FALSE(a.AppendTable(c).ok());
}

TEST(TableTest, CommitAppendedRowsValidatesColumnLengths) {
  Table t("T", TwoColSchema());
  t.mutable_column(0)->AppendString("a");
  // Column 1 not appended: commit must fail.
  EXPECT_TRUE(t.CommitAppendedRows(1).IsInternal());
  t.mutable_column(1)->AppendInt64(7);
  ASSERT_TRUE(t.CommitAppendedRows(1).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ByteSizeGrowsWithData) {
  Table t("T", TwoColSchema());
  const uint64_t before = t.ByteSize();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("s"), Value::Int64(i)}).ok());
  }
  EXPECT_GT(t.ByteSize(), before + 100 * 8);
}

TEST(TableTest, ToStringTruncatesLongTables) {
  Table t("T", TwoColSchema());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("r"), Value::Int64(i)}).ok());
  }
  const std::string s = t.ToString(5);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
  EXPECT_NE(s.find("T.name"), std::string::npos);
}

}  // namespace
}  // namespace dex
