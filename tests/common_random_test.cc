#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dex {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RandomTest, NextBoolProbability) {
  Random rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace dex
