#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace dex::sql {
namespace {

std::vector<Token> MustTokenize(const std::string& s) {
  auto r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ValueOr({});
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  const auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersCarryUppercase) {
  const auto tokens = MustTokenize("select Station frOm");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].upper, "SELECT");
  EXPECT_EQ(tokens[1].text, "Station");
  EXPECT_EQ(tokens[1].upper, "STATION");
  EXPECT_EQ(tokens[2].upper, "FROM");
}

TEST(LexerTest, NumbersIntAndFloat) {
  const auto tokens = MustTokenize("42 3.5 0.001 7");
  EXPECT_EQ(tokens[0].type, TokenType::kInt);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[1].text, "3.5");
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kInt);
}

TEST(LexerTest, QualifiedNameIsThreeTokens) {
  const auto tokens = MustTokenize("F.station");
  ASSERT_EQ(tokens.size(), 4u);  // F . station END
  EXPECT_EQ(tokens[0].text, "F");
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[2].text, "station");
}

TEST(LexerTest, StringLiteral) {
  const auto tokens = MustTokenize("'ISK'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "ISK");
}

TEST(LexerTest, StringWithEscapedQuote) {
  const auto tokens = MustTokenize("'it''s'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, TimestampLiteralKeepsPunctuation) {
  const auto tokens = MustTokenize("'2010-01-12T22:15:00.000'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "2010-01-12T22:15:00.000");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, MultiCharOperators) {
  const auto tokens = MustTokenize("<= >= <> != < > =");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "!=");
  EXPECT_EQ(tokens[4].text, "<");
  EXPECT_EQ(tokens[5].text, ">");
  EXPECT_EQ(tokens[6].text, "=");
}

TEST(LexerTest, LineCommentsSkipped) {
  const auto tokens = MustTokenize("SELECT -- the select list\n *");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "*");
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @foo").ok());
  EXPECT_FALSE(Tokenize("#").ok());
}

TEST(LexerTest, PositionsRecorded) {
  const auto tokens = MustTokenize("SELECT x");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, ArithmeticSymbols) {
  const auto tokens = MustTokenize("a + b - c * d / e");
  EXPECT_EQ(tokens[1].text, "+");
  EXPECT_EQ(tokens[3].text, "-");
  EXPECT_EQ(tokens[5].text, "*");
  EXPECT_EQ(tokens[7].text, "/");
}

}  // namespace
}  // namespace dex::sql
