#include "common/value.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Int64Accessors) {
  const Value v = Value::Int64(-42);
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.int64(), -42);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(ValueTest, DoubleAccessors) {
  const Value v = Value::Double(2.5);
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.dbl(), 2.5);
}

TEST(ValueTest, StringAccessors) {
  const Value v = Value::String("ISK");
  EXPECT_EQ(v.type(), DataType::kString);
  EXPECT_EQ(v.str(), "ISK");
  EXPECT_EQ(v.ToString(), "'ISK'");
}

TEST(ValueTest, BoolAccessors) {
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_FALSE(Value::Bool(false).boolean());
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
}

TEST(ValueTest, TimestampRendersIso) {
  const Value v = Value::Timestamp(0);
  EXPECT_EQ(v.type(), DataType::kTimestamp);
  EXPECT_EQ(v.ToString(), "1970-01-01T00:00:00.000");
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  ASSERT_TRUE(Value::Int64(3).AsDouble().ok());
  EXPECT_DOUBLE_EQ(*Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value::Timestamp(1000).AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, AsInt64RejectsDoubles) {
  EXPECT_FALSE(Value::Double(1.5).AsInt64().ok());
  EXPECT_EQ(*Value::Int64(5).AsInt64(), 5);
}

TEST(ValueTest, EqualsAcrossNumericTypes) {
  EXPECT_TRUE(Value::Int64(2).Equals(Value::Double(2.0)));
  EXPECT_FALSE(Value::Int64(2).Equals(Value::Double(2.5)));
  EXPECT_TRUE(Value::Timestamp(5).Equals(Value::Int64(5)));
}

TEST(ValueTest, EqualsStrings) {
  EXPECT_TRUE(Value::String("a").Equals(Value::String("a")));
  EXPECT_FALSE(Value::String("a").Equals(Value::String("b")));
  EXPECT_FALSE(Value::String("1").Equals(Value::Int64(1)));
}

TEST(ValueTest, NullEqualsSemantics) {
  // Value::Equals treats NULL as unequal to everything (SQL-ish)...
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int64(0)));
  // ...while operator== treats two NULLs as the same value (container use).
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_FALSE(Value::Null() == Value::Int64(0));
}

TEST(ValueTest, DoubleToString) {
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Double(-0.25).ToString(), "-0.25");
}

}  // namespace
}  // namespace dex
