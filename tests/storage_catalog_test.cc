#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

TablePtr MakeNamed(const std::string& name, int rows = 10) {
  auto schema = std::make_shared<Schema>(Schema(
      {{"uri", DataType::kString, name}, {"n", DataType::kInt64, name}}));
  auto t = std::make_shared<Table>(name, schema);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        t->AppendRow({Value::String("u" + std::to_string(i)), Value::Int64(i)})
            .ok());
  }
  return t;
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : disk_(), catalog_(&disk_) {}
  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(CatalogTest, AddAndGet) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("F"), TableKind::kMetadata).ok());
  ASSERT_TRUE(catalog_.HasTable("F"));
  ASSERT_TRUE(catalog_.GetTable("F").ok());
  EXPECT_EQ((*catalog_.GetTable("F"))->name(), "F");
  ASSERT_TRUE(catalog_.GetKind("F").ok());
  EXPECT_EQ(*catalog_.GetKind("F"), TableKind::kMetadata);
}

TEST_F(CatalogTest, DuplicateRejected) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("F"), TableKind::kMetadata).ok());
  EXPECT_TRUE(
      catalog_.AddTable(MakeNamed("F"), TableKind::kActual).IsAlreadyExists());
}

TEST_F(CatalogTest, MissingTableIsNotFound) {
  EXPECT_TRUE(catalog_.GetTable("Z").status().IsNotFound());
  EXPECT_TRUE(catalog_.GetKind("Z").status().IsNotFound());
  EXPECT_FALSE(catalog_.HasTable("Z"));
}

TEST_F(CatalogTest, KindPartitionsTotals) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("F", 5), TableKind::kMetadata).ok());
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D", 50), TableKind::kActual).ok());
  EXPECT_GT(catalog_.TotalTableBytes(TableKind::kActual),
            catalog_.TotalTableBytes(TableKind::kMetadata));
}

TEST_F(CatalogTest, BuildAndFindIndex) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D"), TableKind::kActual).ok());
  ASSERT_TRUE(catalog_.SyncStorageSize("D").ok());
  ASSERT_TRUE(catalog_.BuildIndex("D", {"uri"}, "D_by_uri").ok());
  EXPECT_NE(catalog_.FindIndex("D", {0}), nullptr);
  EXPECT_EQ(catalog_.FindIndex("D", {1}), nullptr);
  EXPECT_EQ(catalog_.FindIndex("Z", {0}), nullptr);
  EXPECT_GT(catalog_.TotalIndexBytes(), 0u);
}

TEST_F(CatalogTest, BuildIndexUnknownColumnFails) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D"), TableKind::kActual).ok());
  EXPECT_FALSE(catalog_.BuildIndex("D", {"ghost"}, "x").ok());
  EXPECT_FALSE(catalog_.BuildIndex("Zed", {"uri"}, "x").ok());
}

TEST_F(CatalogTest, ChargeTableScanCostsSimTime) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D", 100000), TableKind::kActual).ok());
  ASSERT_TRUE(catalog_.SyncStorageSize("D").ok());
  disk_.FlushAll();
  const uint64_t t0 = disk_.stats().sim_nanos;
  ASSERT_TRUE(catalog_.ChargeTableScan("D").ok());
  const uint64_t cold = disk_.stats().sim_nanos - t0;
  EXPECT_GT(cold, 0u);
  // Hot scan is free.
  const uint64_t t1 = disk_.stats().sim_nanos;
  ASSERT_TRUE(catalog_.ChargeTableScan("D").ok());
  EXPECT_EQ(disk_.stats().sim_nanos - t1, 0u);
}

TEST_F(CatalogTest, ChargeIndexReadCostsSimTime) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D", 100000), TableKind::kActual).ok());
  ASSERT_TRUE(catalog_.SyncStorageSize("D").ok());
  ASSERT_TRUE(catalog_.BuildIndex("D", {"uri"}, "D_by_uri").ok());
  disk_.FlushAll();
  const uint64_t t0 = disk_.stats().sim_nanos;
  ASSERT_TRUE(catalog_.ChargeIndexRead("D").ok());
  EXPECT_GT(disk_.stats().sim_nanos - t0, 0u);
}

TEST_F(CatalogTest, ChargeRowsReadTouchesFewPagesForFewRows) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D", 200000), TableKind::kActual).ok());
  ASSERT_TRUE(catalog_.SyncStorageSize("D").ok());
  disk_.FlushAll();
  const uint64_t b0 = disk_.stats().disk_bytes_read;
  ASSERT_TRUE(catalog_.ChargeRowsRead("D", {0, 1, 2, 3}).ok());
  const uint64_t point = disk_.stats().disk_bytes_read - b0;
  disk_.FlushAll();
  const uint64_t b1 = disk_.stats().disk_bytes_read;
  ASSERT_TRUE(catalog_.ChargeTableScan("D").ok());
  const uint64_t full = disk_.stats().disk_bytes_read - b1;
  EXPECT_LT(point, full);
}

TEST_F(CatalogTest, TableNamesSorted) {
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("R"), TableKind::kMetadata).ok());
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("D"), TableKind::kActual).ok());
  ASSERT_TRUE(catalog_.AddTable(MakeNamed("F"), TableKind::kMetadata).ok());
  const auto names = catalog_.TableNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "D");
  EXPECT_EQ(names[2], "R");
}

}  // namespace
}  // namespace dex
