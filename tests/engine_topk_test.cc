// Tests for the top-K fusion (Limit over Sort -> partial sort).

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "io/sim_disk.h"

namespace dex {
namespace {

class TopKTest : public ::testing::Test {
 protected:
  TopKTest() : disk_(), catalog_(&disk_) {
    auto schema = std::make_shared<Schema>(
        Schema({{"k", DataType::kInt64, "T"}, {"v", DataType::kDouble, "T"}}));
    auto t = std::make_shared<Table>("T", schema);
    Random rng(31);
    // More rows than one batch, unsorted.
    for (int i = 0; i < 10000; ++i) {
      EXPECT_TRUE(t->AppendRow({Value::Int64(rng.UniformRange(-1000, 1000)),
                                Value::Double(rng.NextDouble())})
                      .ok());
    }
    EXPECT_TRUE(catalog_.AddTable(t, TableKind::kMetadata).ok());
  }

  Result<TablePtr> Run(const PlanPtr& plan) {
    DEX_RETURN_NOT_OK(AnalyzePlan(plan, catalog_));
    ExecContext ctx;
    ctx.catalog = &catalog_;
    return ExecutePlan(plan, &ctx);
  }

  PlanPtr SortLimitPlan(int64_t limit, bool ascending) {
    return MakeLimit(limit, MakeSort({{Expr::ColumnRef("k"), ascending}},
                                     MakeScan("T")));
  }

  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(TopKTest, FusionRewritesPlanShape) {
  PlanPtr plan = SortLimitPlan(10, true);
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto fused = FuseTopK(plan, catalog_);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ((*fused)->kind, PlanKind::kSort);
  EXPECT_EQ((*fused)->limit, 10);
  EXPECT_NE((*fused)->ToString().find("TopK[10]"), std::string::npos);
}

TEST_F(TopKTest, FusedAndUnfusedAgree) {
  for (int64_t limit : {0, 1, 7, 100, 9999, 20000}) {
    for (bool ascending : {true, false}) {
      PlanPtr plain = SortLimitPlan(limit, ascending);
      ASSERT_TRUE(AnalyzePlan(plain, catalog_).ok());
      auto fused = FuseTopK(plain, catalog_);
      ASSERT_TRUE(fused.ok());
      auto expected = Run(plain);
      auto got = Run(*fused);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ((*got)->num_rows(), (*expected)->num_rows())
          << "limit=" << limit;
      for (size_t r = 0; r < (*got)->num_rows(); ++r) {
        EXPECT_EQ((*got)->GetValue(r, 0).int64(),
                  (*expected)->GetValue(r, 0).int64())
            << "limit=" << limit << " row=" << r;
      }
    }
  }
}

TEST_F(TopKTest, TopKOutputIsSortedPrefix) {
  PlanPtr plan = SortLimitPlan(25, true);
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto fused = FuseTopK(plan, catalog_);
  ASSERT_TRUE(fused.ok());
  auto got = Run(*fused);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ((*got)->num_rows(), 25u);
  for (size_t r = 1; r < 25; ++r) {
    EXPECT_LE((*got)->GetValue(r - 1, 0).int64(),
              (*got)->GetValue(r, 0).int64());
  }
}

TEST_F(TopKTest, NestedLimitsKeepTheSmallest) {
  // Limit(5, Limit(50, Sort)) -> TopK[5].
  PlanPtr plan = MakeLimit(
      5, MakeLimit(50, MakeSort({{Expr::ColumnRef("k"), true}}, MakeScan("T"))));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto fused = FuseTopK(plan, catalog_);
  ASSERT_TRUE(fused.ok());
  auto got = Run(*fused);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->num_rows(), 5u);
}

TEST_F(TopKTest, LimitWithoutSortUntouched) {
  PlanPtr plan = MakeLimit(10, MakeScan("T"));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto fused = FuseTopK(plan, catalog_);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ((*fused)->kind, PlanKind::kLimit);
}

TEST_F(TopKTest, SortWithoutLimitUntouched) {
  PlanPtr plan = MakeSort({{Expr::ColumnRef("k"), true}}, MakeScan("T"));
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto fused = FuseTopK(plan, catalog_);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ((*fused)->kind, PlanKind::kSort);
  EXPECT_EQ((*fused)->limit, -1);
  auto got = Run(*fused);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->num_rows(), 10000u);
}

}  // namespace
}  // namespace dex
