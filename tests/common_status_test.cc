#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const Status s = Status::Corruption("bad frame");
  EXPECT_EQ(s.ToString(), "Corruption: bad frame");
}

TEST(StatusTest, CopyPreservesState) {
  const Status s = Status::IOError("disk gone");
  Status t = s;  // copy ctor
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
  Status u;
  u = s;  // copy assignment
  EXPECT_TRUE(u.IsIOError());
  // Self-consistency after copying over a non-OK value.
  u = Status::OK();
  EXPECT_TRUE(u.ok());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::NotFound("gone");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsNotFound());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status s = Status::NotFound("row 5").WithContext("loading table F");
  EXPECT_EQ(s.message(), "loading table F: row 5");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_TRUE(Status::OK().WithContext("nope").ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DEX_RETURN_NOT_OK(Status::Corruption("inner"));
    return Status::OK();
  };
  auto passes = []() -> Status {
    DEX_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_TRUE(fails().IsCorruption());
  EXPECT_TRUE(passes().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("boom");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DEX_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsIOError());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace dex
