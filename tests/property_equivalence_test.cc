// Randomized property tests: for *generated* queries, automated lazy
// ingestion must return exactly what eager ingestion returns, under every
// run-time-optimization configuration. This is the system's load-bearing
// invariant (the paper: "the queries are the same as in the case where the
// database is eagerly loaded with all data up-front").

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/database.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::CanonicalRows;
using ::dex::testing::ScopedRepo;
using ::dex::testing::SmallRepoOptions;

/// Generates a random exploration query over the F/R/D schema.
std::string GenerateQuery(Random* rng) {
  const char* stations[] = {"ISK", "ANK", "IZM", "NOPE"};
  const char* channels[] = {"BHE", "BHN", "BHZ"};
  const char* days[] = {"2010-01-01", "2010-01-02", "2010-01-03"};

  std::vector<std::string> where;
  if (rng->NextBool(0.7)) {
    std::string in = "F.station IN (";
    const int k = 1 + static_cast<int>(rng->Uniform(2));
    for (int i = 0; i < k; ++i) {
      if (i) in += ", ";
      in += "'" + std::string(stations[rng->Uniform(4)]) + "'";
    }
    where.push_back(in + ")");
  }
  if (rng->NextBool(0.5)) {
    where.push_back("F.channel = '" + std::string(channels[rng->Uniform(3)]) +
                    "'");
  }
  const bool with_r = rng->NextBool(0.6);
  if (with_r && rng->NextBool(0.6)) {
    const std::string day = days[rng->Uniform(3)];
    where.push_back("R.start_time BETWEEN '" + day + "T00:00:00.000' AND '" +
                    day + "T23:59:59.999'");
  }
  if (rng->NextBool(0.4)) {
    where.push_back("D.sample_time > '2010-01-0" +
                    std::to_string(1 + rng->Uniform(3)) + "T0" +
                    std::to_string(rng->Uniform(9)) + ":00:00.000'");
  }
  if (rng->NextBool(0.4)) {
    where.push_back("D.sample_value > " + std::to_string(
                        rng->UniformRange(-50, 2000)));
  }

  std::string from = "FROM F ";
  if (with_r) {
    from +=
        "JOIN R ON F.uri = R.uri "
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id ";
  } else {
    from += "JOIN D ON F.uri = D.uri ";
  }

  std::string select;
  switch (rng->Uniform(4)) {
    case 0:
      select = "SELECT COUNT(*) ";
      break;
    case 1:
      select = "SELECT AVG(D.sample_value), COUNT(*) ";
      break;
    case 2:
      select =
          "SELECT F.station, MIN(D.sample_value) AS lo, "
          "MAX(D.sample_value) AS hi ";
      break;
    default:
      select = "SELECT F.station, COUNT(*) AS n ";
      break;
  }
  std::string tail;
  if (select.find("F.station") != std::string::npos) {
    tail = "GROUP BY F.station ORDER BY F.station ";
  }

  std::string sql = select + from;
  for (size_t i = 0; i < where.size(); ++i) {
    sql += (i == 0 ? "WHERE " : "AND ") + where[i] + " ";
  }
  return sql + tail + ";";
}

class RandomizedEquivalence : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    repo_ = new ScopedRepo("property_equiv", SmallRepoOptions());
    auto ei = Database::Open(repo_->root(), [] {
      DatabaseOptions o;
      o.mode = IngestionMode::kEager;
      return o;
    }());
    ASSERT_TRUE(ei.ok());
    ei_ = new std::unique_ptr<Database>(std::move(*ei));

    // A spread of lazy configurations that must all agree.
    static const char* kLabels[] = {"default", "no-pushdown", "strategy-b",
                                    "cache-all", "tuple-cache", "batched"};
    labels_ = kLabels;
    std::vector<DatabaseOptions> configs(6);
    configs[1].two_stage.push_selection_into_union = false;
    configs[2].two_stage.distribute_join_over_union = true;
    configs[3].cache.policy = CachePolicy::kAll;
    configs[4].cache.policy = CachePolicy::kAll;
    configs[4].cache.granularity = CacheGranularity::kTuple;
    configs[5].two_stage.mount_batch_size = 2;
    alis_ = new std::vector<std::unique_ptr<Database>>();
    for (DatabaseOptions& o : configs) {
      o.mode = IngestionMode::kLazy;
      auto db = Database::Open(repo_->root(), o);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      alis_->push_back(std::move(*db));
    }
  }
  static void TearDownTestSuite() {
    delete alis_;
    alis_ = nullptr;
    delete ei_;
    ei_ = nullptr;
    delete repo_;
    repo_ = nullptr;
  }

  static ScopedRepo* repo_;
  static std::unique_ptr<Database>* ei_;
  static std::vector<std::unique_ptr<Database>>* alis_;
  static const char* const* labels_;
};

ScopedRepo* RandomizedEquivalence::repo_ = nullptr;
std::unique_ptr<Database>* RandomizedEquivalence::ei_ = nullptr;
std::vector<std::unique_ptr<Database>>* RandomizedEquivalence::alis_ = nullptr;
const char* const* RandomizedEquivalence::labels_ = nullptr;

TEST_P(RandomizedEquivalence, AllConfigurationsAgreeWithEager) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const std::string sql = GenerateQuery(&rng);
  auto expected = (*ei_)->Query(sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString() << "\n" << sql;
  const auto expected_rows = CanonicalRows(*expected->table);
  for (size_t c = 0; c < alis_->size(); ++c) {
    auto got = (*alis_)[c]->Query(sql);
    ASSERT_TRUE(got.ok()) << labels_[c] << ": " << got.status().ToString()
                          << "\n" << sql;
    EXPECT_EQ(CanonicalRows(*got->table), expected_rows)
        << "config '" << labels_[c] << "' diverged on:\n" << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence, ::testing::Range(0, 24));

}  // namespace
}  // namespace dex
