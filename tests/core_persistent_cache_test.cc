// Tests for the durable cache tier: PersistentCache's write/validate/recover
// ladder in isolation, CacheManager's spill/reload tiering on top of it, and
// the Database-level contract the issue demands — under every injected
// persistence fault a reopened database answers byte-identically to a cold
// open, corrupt entries are quarantined (never served, never a crash), and
// recovery replays bit-identically at any worker count.

#include "core/persistent_cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_manager.h"
#include "core/database.h"
#include "io/file_io.h"
#include "io/sim_disk.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "test_util.h"

namespace dex {
namespace {

using dex::testing::CanonicalRows;
using dex::testing::ScopedRepo;
using dex::testing::TinyRepoOptions;

// -- Shared helpers ---------------------------------------------------------

std::string ScratchDir(const std::string& tag) {
  return "/tmp/dex_test_pcache_" + tag + "_" + std::to_string(::getpid());
}

TablePtr MakeTable(size_t rows, int64_t salt = 0) {
  auto schema = std::make_shared<Schema>();
  schema->AddField({"record_id", DataType::kInt64, "D"});
  schema->AddField({"sample_value", DataType::kDouble, "D"});
  auto table = std::make_shared<Table>("D", schema);
  for (size_t i = 0; i < rows; ++i) {
    table->mutable_column(0)->AppendInt64(static_cast<int64_t>(i) + salt);
    table->mutable_column(1)->AppendDouble(static_cast<double>(i) * 0.5);
  }
  EXPECT_TRUE(table->CommitAppendedRows(rows).ok());
  return table;
}

ColumnarFileMeta MetaForFakeSource(const std::string& uri) {
  ColumnarFileMeta meta;
  meta.source_uri = uri;
  meta.source_size_bytes = 4096;
  meta.source_mtime_ms = 1723180800000;
  return meta;
}

// Writes a real source file and returns meta matching its current stat, so
// recovery's staleness check passes.
ColumnarFileMeta MetaForRealSource(const std::string& path,
                                   const std::string& contents) {
  EXPECT_TRUE(WriteStringToFile(path, contents).ok());
  ColumnarFileMeta meta;
  meta.source_uri = path;
  auto size = FileSize(path);
  auto mtime = FileMtimeMillis(path);
  EXPECT_TRUE(size.ok() && mtime.ok());
  meta.source_size_bytes = size.ok() ? *size : 0;
  meta.source_mtime_ms = mtime.ok() ? *mtime : 0;
  return meta;
}

// -- PersistentCache unit tests ---------------------------------------------

class PersistentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ScratchDir(info->name());
    (void)RemoveDirRecursive(dir_);
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::string cache_dir() const { return dir_ + "/cache"; }
  std::string source_path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

TEST_F(PersistentCacheTest, PersistThenLoadRoundtrips) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});

  TablePtr table = MakeTable(200);
  ASSERT_TRUE(pc.Persist("/repo/a.mseed", *table,
                         MetaForFakeSource("/repo/a.mseed")));
  EXPECT_EQ(pc.num_entries(), 1u);
  EXPECT_EQ(pc.stats().persisted, 1u);
  EXPECT_GT(pc.stats().persisted_bytes, 0u);

  ColumnarFileMeta meta;
  auto loaded = pc.Load("/repo/a.mseed", &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(CanonicalRows(**loaded), CanonicalRows(*table));
  EXPECT_EQ(meta.source_uri, "/repo/a.mseed");
  EXPECT_EQ(pc.stats().loads, 1u);
  EXPECT_EQ(pc.stats().load_failures, 0u);
}

TEST_F(PersistentCacheTest, LoadOfUnknownUriIsNotFound) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
  auto loaded = pc.Load("/repo/none.mseed", nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST_F(PersistentCacheTest, RecoverReturnsValidatedEntriesSortedByUri) {
  {
    SimDisk disk{SimDisk::Options{}};
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    for (const char* name : {"b.mseed", "a.mseed", "c.mseed"}) {
      const std::string src = source_path(name);
      ASSERT_TRUE(pc.Persist(src, *MakeTable(64, name[0]),
                             MetaForRealSource(src, std::string(100, name[0]))));
    }
  }
  // A fresh instance on the same directory — a process restart.
  SimDisk disk2{SimDisk::Options{}};
  PersistentCache pc2(&disk2, {cache_dir(), PersistentCache::kGeneration});
  auto entries = pc2.Recover();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].uri, source_path("a.mseed"));
  EXPECT_EQ(entries[1].uri, source_path("b.mseed"));
  EXPECT_EQ(entries[2].uri, source_path("c.mseed"));
  for (const auto& e : entries) {
    ASSERT_NE(e.table, nullptr);
    EXPECT_EQ(e.table->num_rows(), 64u);
    EXPECT_EQ(e.meta.source_uri, e.uri);
  }
  EXPECT_EQ(pc2.stats().recovered, 3u);
  EXPECT_EQ(pc2.stats().quarantined, 0u);
  EXPECT_EQ(pc2.stats().stale_dropped, 0u);
}

TEST_F(PersistentCacheTest, TornWriteIsQuarantinedOnRecovery) {
  const std::string src = source_path("a.mseed");
  {
    SimDisk::Options dopts;
    dopts.faults.seed = 7;
    dopts.faults.torn_write_rate = 1.0;
    SimDisk disk(dopts);
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    // Persist "succeeds" — the damage is silent, like a real torn write.
    ASSERT_TRUE(
        pc.Persist(src, *MakeTable(128), MetaForRealSource(src, "payload")));
    EXPECT_GT(disk.fault_injector()->stats().torn_writes, 0u);
  }
  SimDisk disk2{SimDisk::Options{}};
  PersistentCache pc2(&disk2, {cache_dir(), PersistentCache::kGeneration});
  auto entries = pc2.Recover();
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(pc2.stats().quarantined, 1u);
  EXPECT_EQ(pc2.stats().recovered, 0u);
  EXPECT_EQ(pc2.num_entries(), 0u);
  // The quarantined entry file is gone from disk too.
  auto files = ListFiles(cache_dir(), ".dxcol");
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files->empty());
}

TEST_F(PersistentCacheTest, BitFlipIsQuarantinedOnRecovery) {
  const std::string src = source_path("a.mseed");
  {
    SimDisk::Options dopts;
    dopts.faults.seed = 9;
    dopts.faults.bit_flip_rate = 1.0;
    SimDisk disk(dopts);
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    ASSERT_TRUE(
        pc.Persist(src, *MakeTable(128), MetaForRealSource(src, "payload")));
    EXPECT_GT(disk.fault_injector()->stats().bit_flips, 0u);
  }
  SimDisk disk2{SimDisk::Options{}};
  PersistentCache pc2(&disk2, {cache_dir(), PersistentCache::kGeneration});
  EXPECT_TRUE(pc2.Recover().empty());
  EXPECT_EQ(pc2.stats().quarantined, 1u);
}

TEST_F(PersistentCacheTest, ShortReadIsQuarantinedOnRecovery) {
  const std::string src = source_path("a.mseed");
  {
    SimDisk disk{SimDisk::Options{}};
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    ASSERT_TRUE(
        pc.Persist(src, *MakeTable(128), MetaForRealSource(src, "payload")));
  }
  SimDisk::Options dopts;
  dopts.faults.seed = 3;
  dopts.faults.short_read_rate = 1.0;
  SimDisk disk2(dopts);
  PersistentCache pc2(&disk2, {cache_dir(), PersistentCache::kGeneration});
  EXPECT_TRUE(pc2.Recover().empty());
  EXPECT_EQ(pc2.stats().quarantined, 1u);
  EXPECT_GT(disk2.fault_injector()->stats().short_reads, 0u);
}

TEST_F(PersistentCacheTest, StaleSourceIsDroppedOnRecovery) {
  const std::string src = source_path("a.mseed");
  {
    SimDisk disk{SimDisk::Options{}};
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    ASSERT_TRUE(
        pc.Persist(src, *MakeTable(64), MetaForRealSource(src, "original")));
  }
  // The source grows after the entry was persisted — the cached rows no
  // longer describe it.
  ASSERT_TRUE(WriteStringToFile(src, "original plus new data").ok());
  SimDisk disk2{SimDisk::Options{}};
  PersistentCache pc2(&disk2, {cache_dir(), PersistentCache::kGeneration});
  EXPECT_TRUE(pc2.Recover().empty());
  EXPECT_EQ(pc2.stats().stale_dropped, 1u);
  EXPECT_EQ(pc2.stats().quarantined, 0u);
  EXPECT_EQ(pc2.num_entries(), 0u);
}

TEST_F(PersistentCacheTest, TamperedEntryFileQuarantinesOnLoad) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
  ASSERT_TRUE(pc.Persist("/repo/a.mseed", *MakeTable(64),
                         MetaForFakeSource("/repo/a.mseed")));

  auto files = ListFiles(cache_dir(), ".dxcol");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString((*files)[0], &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x20;  // silent bit rot in the middle
  ASSERT_TRUE(WriteStringToFile((*files)[0], bytes).ok());

  auto loaded = pc.Load("/repo/a.mseed", nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_EQ(pc.stats().quarantined, 1u);
  EXPECT_EQ(pc.stats().load_failures, 1u);
  EXPECT_EQ(pc.num_entries(), 0u);
  // Quarantine deleted the file and dropped the manifest entry: a second
  // load is a clean NotFound, not a repeat failure.
  EXPECT_TRUE(pc.Load("/repo/a.mseed", nullptr).status().IsNotFound());
}

TEST_F(PersistentCacheTest, CorruptManifestWipesTheDirectory) {
  {
    SimDisk disk{SimDisk::Options{}};
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    for (int i = 0; i < 3; ++i) {
      const std::string uri = "/repo/" + std::to_string(i) + ".mseed";
      ASSERT_TRUE(pc.Persist(uri, *MakeTable(32, i), MetaForFakeSource(uri)));
    }
  }
  ASSERT_TRUE(
      WriteStringToFile(cache_dir() + "/MANIFEST", "not a manifest").ok());
  SimDisk disk2{SimDisk::Options{}};
  PersistentCache pc2(&disk2, {cache_dir(), PersistentCache::kGeneration});
  EXPECT_TRUE(pc2.Recover().empty());
  EXPECT_GE(pc2.stats().quarantined, 1u);
  auto files = ListFiles(cache_dir(), ".dxcol");
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files->empty()) << "wipe must remove orphaned entry files";
}

TEST_F(PersistentCacheTest, GenerationMismatchWipesTheDirectory) {
  {
    SimDisk disk{SimDisk::Options{}};
    PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
    ASSERT_TRUE(pc.Persist("/repo/a.mseed", *MakeTable(32),
                           MetaForFakeSource("/repo/a.mseed")));
  }
  SimDisk disk2{SimDisk::Options{}};
  PersistentCache::Options opts{cache_dir(), PersistentCache::kGeneration + 1};
  PersistentCache pc2(&disk2, opts);
  EXPECT_TRUE(pc2.Recover().empty());
  auto files = ListFiles(cache_dir(), ".dxcol");
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files->empty());
}

TEST_F(PersistentCacheTest, RemoveAndRemoveAllDeleteDurableState) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
  ASSERT_TRUE(pc.Persist("/repo/a.mseed", *MakeTable(16),
                         MetaForFakeSource("/repo/a.mseed")));
  ASSERT_TRUE(pc.Persist("/repo/b.mseed", *MakeTable(16),
                         MetaForFakeSource("/repo/b.mseed")));
  pc.Remove("/repo/a.mseed");
  EXPECT_EQ(pc.num_entries(), 1u);
  EXPECT_TRUE(pc.Load("/repo/a.mseed", nullptr).status().IsNotFound());
  pc.RemoveAll();
  EXPECT_EQ(pc.num_entries(), 0u);
  auto files = ListFiles(cache_dir(), ".dxcol");
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files->empty());
}

TEST_F(PersistentCacheTest, FaultDrawsAndChargesAreSeedDeterministic) {
  // Two identical runs (same seed, same uris, same order) must draw the same
  // fault schedule and charge the same simulated time — the replayability
  // contract that makes persistence faults debuggable.
  auto run = [&](const std::string& tag) {
    const std::string dir = dir_ + "/" + tag;
    SimDisk::Options dopts;
    dopts.faults.seed = 42;
    dopts.faults.torn_write_rate = 0.5;
    dopts.faults.bit_flip_rate = 0.3;
    SimDisk disk(dopts);
    PersistentCache pc(&disk, {dir, PersistentCache::kGeneration});
    for (int i = 0; i < 8; ++i) {
      const std::string uri = "/repo/" + std::to_string(i) + ".mseed";
      pc.Persist(uri, *MakeTable(64, i), MetaForFakeSource(uri));
    }
    return std::make_pair(disk.fault_injector()->stats(),
                          disk.stats().sim_nanos);
  };
  auto a = run("run_a");
  auto b = run("run_b");
  EXPECT_EQ(a.first.torn_writes, b.first.torn_writes);
  EXPECT_EQ(a.first.bit_flips, b.first.bit_flips);
  EXPECT_EQ(a.first.cache_writes_seen, b.first.cache_writes_seen);
  EXPECT_EQ(a.second, b.second) << "sim-time charges must replay";
}

// -- CacheManager tiering (spill / reload / write-through) ------------------

class CacheTierTest : public PersistentCacheTest {};

TEST_F(CacheTierTest, CapacityEvictionSpillsAndProbeReloads) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});

  TablePtr t1 = MakeTable(1000, 1);
  TablePtr t2 = MakeTable(1000, 2);
  CacheManager::Options copts;
  copts.policy = CachePolicy::kLru;
  // Room for one table but not two: the second insert must evict the first.
  copts.capacity_bytes = t1->ByteSize() + t1->ByteSize() / 2;
  CacheManager cache(copts);
  cache.AttachPersistent(&pc);

  cache.Insert("/repo/u1", "", 123, t1);
  cache.Insert("/repo/u2", "", 123, t2);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.persisted, 2u) << "insertions write through to the durable tier";
  EXPECT_EQ(s.spills, 1u) << "capacity pressure demotes, not discards";
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.num_entries(), 2u) << "the spilled entry remains as a stub";
  EXPECT_EQ(pc.num_entries(), 2u);

  // Touching the stub promotes it back through the validation ladder.
  EXPECT_TRUE(cache.Probe("/repo/u1", "", 123));
  EXPECT_EQ(cache.stats().reloads, 1u);
  auto back = cache.Lookup("/repo/u1");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(CanonicalRows(**back), CanonicalRows(*t1));
}

TEST_F(CacheTierTest, BudgetRejectionLeavesAReloadableStub) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});

  TablePtr big = MakeTable(2000);
  MemoryBudget budget(big->ByteSize() / 2);  // can never hold the table
  CacheManager::Options copts;
  copts.policy = CachePolicy::kLru;
  CacheManager cache(copts);
  cache.AttachBudget(&budget);
  cache.AttachPersistent(&pc);

  cache.Insert("/repo/u1", "", 5, big);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.budget_rejections, 1u);
  EXPECT_EQ(s.spills, 1u) << "budget-refused insert still lands durably";
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ(pc.num_entries(), 1u);
  EXPECT_EQ(budget.used(), 0u) << "a stub holds no reservation";

  // The budget still refuses the reload: the probe degrades to a miss and
  // the stub survives for when memory frees up.
  EXPECT_FALSE(cache.Probe("/repo/u1", "", 5));
  EXPECT_EQ(cache.num_entries(), 1u);

  // Memory frees up (limit lifted): the same probe now hits via reload.
  budget.set_limit(0);
  EXPECT_TRUE(cache.Probe("/repo/u1", "", 5));
  EXPECT_EQ(cache.stats().reloads, 1u);
  EXPECT_EQ(budget.used(), big->ByteSize());
}

TEST_F(CacheTierTest, CorruptSpilledEntryDegradesToAMiss) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});

  TablePtr t1 = MakeTable(1000, 1);
  TablePtr t2 = MakeTable(1000, 2);
  CacheManager::Options copts;
  copts.policy = CachePolicy::kLru;
  copts.capacity_bytes = t1->ByteSize() + t1->ByteSize() / 2;
  CacheManager cache(copts);
  cache.AttachPersistent(&pc);
  cache.Insert("/repo/u1", "", 123, t1);
  cache.Insert("/repo/u2", "", 123, t2);  // spills u1

  // Bit rot hits every entry file while spilled.
  auto files = ListFiles(cache_dir(), ".dxcol");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  for (const auto& f : *files) {
    std::string bytes;
    ASSERT_TRUE(ReadFileToString(f, &bytes).ok());
    bytes[bytes.size() / 3] ^= 0x08;
    ASSERT_TRUE(WriteStringToFile(f, bytes).ok());
  }

  // The resident entry is untouched by disk rot; the spilled one degrades to
  // a miss (quarantined, stub erased) — never an error, never wrong rows.
  EXPECT_TRUE(cache.Probe("/repo/u2", "", 123));
  EXPECT_FALSE(cache.Probe("/repo/u1", "", 123));
  EXPECT_EQ(cache.stats().reload_failures, 1u);
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ(pc.stats().quarantined, 1u);
  EXPECT_EQ(pc.num_entries(), 1u);
}

TEST_F(CacheTierTest, ClearDropsDurableStateToo) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
  CacheManager::Options copts;
  copts.policy = CachePolicy::kLru;
  CacheManager cache(copts);
  cache.AttachPersistent(&pc);
  cache.Insert("/repo/u1", "", 1, MakeTable(100));
  ASSERT_EQ(pc.num_entries(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(pc.num_entries(), 0u);
}

TEST_F(CacheTierTest, AdoptRecoveredAsStubReloadsOnFirstTouch) {
  SimDisk disk{SimDisk::Options{}};
  PersistentCache pc(&disk, {cache_dir(), PersistentCache::kGeneration});
  TablePtr t = MakeTable(500);
  ColumnarFileMeta meta = MetaForFakeSource("/repo/u1");
  meta.table_byte_size = t->ByteSize();
  ASSERT_TRUE(pc.Persist("/repo/u1", *t, meta));

  CacheManager::Options copts;
  copts.policy = CachePolicy::kLru;
  CacheManager cache(copts);
  cache.AttachPersistent(&pc);
  // Adopt with a null table — as Open() does when the budget refuses
  // residency at recovery time.
  cache.AdoptRecovered("/repo/u1", meta, nullptr);
  EXPECT_EQ(cache.num_entries(), 1u);

  EXPECT_TRUE(cache.Probe("/repo/u1", "", meta.source_mtime_ms));
  EXPECT_EQ(cache.stats().reloads, 1u);
  auto back = cache.Lookup("/repo/u1");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(CanonicalRows(**back), CanonicalRows(*t));
}

// -- Database-level integration ---------------------------------------------

constexpr char kBroadQuery[] =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";
constexpr char kFilteredQuery[] =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
    "WHERE F.station = 'ISK' AND F.channel = 'BHE'";

class DbPersistentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    cache_dir_ = ScratchDir(std::string("db_") + info->name());
    (void)RemoveDirRecursive(cache_dir_);
  }
  void TearDown() override { (void)RemoveDirRecursive(cache_dir_); }

  DatabaseOptions CacheOpts() const {
    DatabaseOptions o;
    o.mode = IngestionMode::kLazy;
    o.cache.policy = CachePolicy::kLru;
    o.cache_dir = cache_dir_;
    return o;
  }

  // Reference answers from a database with no cache at all.
  std::vector<std::string> ColdRows(const std::string& root,
                                    const std::string& sql) {
    DatabaseOptions o;
    o.mode = IngestionMode::kLazy;
    auto db = Database::Open(root, o);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto res = (*db)->Query(sql);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? CanonicalRows(*res->table) : std::vector<std::string>{};
  }

  std::string cache_dir_;
};

TEST_F(DbPersistentCacheTest, WarmRestartAnswersWithoutAnyMounts) {
  ScopedRepo repo("pcache_warm", TinyRepoOptions());
  const auto cold = ColdRows(repo.root(), kBroadQuery);

  size_t num_files = 0;
  {
    auto db = Database::Open(repo.root(), CacheOpts());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    num_files = (*db)->open_stats().num_files;
    ASSERT_GT(num_files, 0u);
    auto res = (*db)->Query(kBroadQuery);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->stats.mount.mounts, num_files) << "first run mounts all";
    EXPECT_EQ(CanonicalRows(*res->table), cold);
    EXPECT_EQ((*db)->persistent_cache()->num_entries(), num_files);
  }

  // Restart: everything comes back from the durable tier, zero mounts.
  auto db2 = Database::Open(repo.root(), CacheOpts());
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_EQ((*db2)->open_stats().cache_entries_recovered, num_files);
  EXPECT_EQ((*db2)->open_stats().cache_entries_quarantined, 0u);
  EXPECT_EQ((*db2)->open_stats().cache_entries_stale, 0u);
  auto warm = (*db2)->Query(kBroadQuery);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->stats.mount.mounts, 0u) << "warm restart must not re-mount";
  EXPECT_EQ(CanonicalRows(*warm->table), cold)
      << "reopened answers must be byte-identical to a cold open";
}

TEST_F(DbPersistentCacheTest, CorruptionFuzzSeededSweepNeverServesWrongRows) {
  ScopedRepo repo("pcache_fuzz", TinyRepoOptions());
  const auto cold_broad = ColdRows(repo.root(), kBroadQuery);
  const auto cold_filtered = ColdRows(repo.root(), kFilteredQuery);

  for (uint64_t seed : {11u, 22u, 33u}) {
    (void)RemoveDirRecursive(cache_dir_);
    DatabaseOptions opts = CacheOpts();
    opts.disk.faults.seed = seed;
    opts.disk.faults.torn_write_rate = 0.4;
    opts.disk.faults.bit_flip_rate = 0.3;
    opts.disk.faults.short_read_rate = 0.3;

    size_t persisted_entries = 0;
    {
      auto db = Database::Open(repo.root(), opts);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      auto res = (*db)->Query(kBroadQuery);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      // Write faults are silent: the live query serves from memory and is
      // never affected.
      EXPECT_EQ(CanonicalRows(*res->table), cold_broad) << "seed " << seed;
      persisted_entries = (*db)->persistent_cache()->num_entries();
      ASSERT_GT(persisted_entries, 0u);
    }

    auto db2 = Database::Open(repo.root(), opts);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    const OpenStats& os = (*db2)->open_stats();
    // Conservation: every persisted entry either survived the ladder, was
    // quarantined as corrupt, or was dropped as stale — none vanish, none
    // are served unvalidated.
    EXPECT_EQ(os.cache_entries_recovered + os.cache_entries_quarantined +
                  os.cache_entries_stale,
              persisted_entries)
        << "seed " << seed;
    EXPECT_EQ(os.cache_entries_stale, 0u) << "sources did not change";

    auto broad = (*db2)->Query(kBroadQuery);
    ASSERT_TRUE(broad.ok()) << broad.status().ToString();
    EXPECT_EQ(CanonicalRows(*broad->table), cold_broad)
        << "seed " << seed << ": reopen under faults must match cold open";
    // Quarantined entries degrade to re-mounts, recovered ones serve cached.
    EXPECT_EQ(broad->stats.mount.mounts,
              persisted_entries - os.cache_entries_recovered)
        << "seed " << seed;

    auto filtered = (*db2)->Query(kFilteredQuery);
    ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
    EXPECT_EQ(CanonicalRows(*filtered->table), cold_filtered)
        << "seed " << seed;
  }
}

TEST_F(DbPersistentCacheTest, RecoveryReplaysBitIdenticallyAcrossWorkerCounts) {
  ScopedRepo repo("pcache_workers", TinyRepoOptions());
  const auto cold = ColdRows(repo.root(), kBroadQuery);

  struct RunResult {
    std::vector<std::string> rows;
    uint64_t recovered, quarantined, stale;
    uint64_t open_sim_nanos;
    uint64_t warm_mounts;
  };
  auto run = [&](size_t workers) {
    (void)RemoveDirRecursive(cache_dir_);
    DatabaseOptions opts = CacheOpts();
    opts.disk.faults.seed = 99;
    opts.disk.faults.torn_write_rate = 0.4;
    opts.disk.faults.bit_flip_rate = 0.3;
    opts.disk.faults.short_read_rate = 0.3;
    opts.stage1_threads = workers;
    QueryOptions qopts;
    qopts.num_threads = workers;
    {
      auto db = Database::Open(repo.root(), opts);
      EXPECT_TRUE(db.ok()) << db.status().ToString();
      auto res = (*db)->Query(kBroadQuery, qopts);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
    }
    auto db2 = Database::Open(repo.root(), opts);
    EXPECT_TRUE(db2.ok()) << db2.status().ToString();
    RunResult r;
    const OpenStats& os = (*db2)->open_stats();
    r.recovered = os.cache_entries_recovered;
    r.quarantined = os.cache_entries_quarantined;
    r.stale = os.cache_entries_stale;
    r.open_sim_nanos = os.sim_io_nanos;
    auto res = (*db2)->Query(kBroadQuery, qopts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    r.rows = res.ok() ? CanonicalRows(*res->table) : std::vector<std::string>{};
    r.warm_mounts = res.ok() ? res->stats.mount.mounts : 0;
    return r;
  };

  const RunResult base = run(1);
  EXPECT_EQ(base.rows, cold);
  for (size_t workers : {4u, 8u}) {
    const RunResult r = run(workers);
    EXPECT_EQ(r.rows, base.rows) << workers << " workers";
    EXPECT_EQ(r.recovered, base.recovered) << workers << " workers";
    EXPECT_EQ(r.quarantined, base.quarantined) << workers << " workers";
    EXPECT_EQ(r.stale, base.stale) << workers << " workers";
    EXPECT_EQ(r.open_sim_nanos, base.open_sim_nanos)
        << workers << " workers: recovery sim-time must replay bit-identically";
    EXPECT_EQ(r.warm_mounts, base.warm_mounts) << workers << " workers";
  }
}

TEST_F(DbPersistentCacheTest, ChangedSourceFileIsDroppedAsStaleOnReopen) {
  ScopedRepo repo("pcache_stale", TinyRepoOptions());
  const auto cold = ColdRows(repo.root(), kBroadQuery);

  size_t num_files = 0;
  {
    auto db = Database::Open(repo.root(), CacheOpts());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    num_files = (*db)->open_stats().num_files;
    auto res = (*db)->Query(kBroadQuery);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }

  // Rewrite one repository file with identical contents: same bytes, new
  // mtime — the conservative staleness check must drop its cache entry.
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_FALSE(files->empty());
  std::string contents;
  ASSERT_TRUE(ReadFileToString((*files)[0], &contents).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(WriteStringToFile((*files)[0], contents).ok());

  auto db2 = Database::Open(repo.root(), CacheOpts());
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_EQ((*db2)->open_stats().cache_entries_stale, 1u);
  EXPECT_EQ((*db2)->open_stats().cache_entries_recovered, num_files - 1);
  auto warm = (*db2)->Query(kBroadQuery);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->stats.mount.mounts, 1u) << "only the changed file re-mounts";
  EXPECT_EQ(CanonicalRows(*warm->table), cold);
}

TEST_F(DbPersistentCacheTest, ManifestCorruptionFallsBackToACleanColdOpen) {
  ScopedRepo repo("pcache_manifest", TinyRepoOptions());
  const auto cold = ColdRows(repo.root(), kBroadQuery);

  size_t num_files = 0;
  {
    auto db = Database::Open(repo.root(), CacheOpts());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    num_files = (*db)->open_stats().num_files;
    auto res = (*db)->Query(kBroadQuery);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }
  ASSERT_TRUE(
      WriteStringToFile(cache_dir_ + "/MANIFEST", "truncated garbage").ok());

  auto db2 = Database::Open(repo.root(), CacheOpts());
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_EQ((*db2)->open_stats().cache_entries_recovered, 0u);
  EXPECT_GE((*db2)->open_stats().cache_entries_quarantined, 1u);
  auto res = (*db2)->Query(kBroadQuery);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->stats.mount.mounts, num_files) << "clean cold behavior";
  EXPECT_EQ(CanonicalRows(*res->table), cold);
  // And the cache repopulates durably for the *next* restart.
  EXPECT_EQ((*db2)->persistent_cache()->num_entries(), num_files);
}

TEST_F(DbPersistentCacheTest, EveryEntryFileBitFlippedStillAnswersCorrectly) {
  ScopedRepo repo("pcache_rot", TinyRepoOptions());
  const auto cold = ColdRows(repo.root(), kBroadQuery);

  size_t num_files = 0;
  {
    auto db = Database::Open(repo.root(), CacheOpts());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    num_files = (*db)->open_stats().num_files;
    auto res = (*db)->Query(kBroadQuery);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }
  auto files = ListFiles(cache_dir_, ".dxcol");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), num_files);
  for (const auto& f : *files) {
    std::string bytes;
    ASSERT_TRUE(ReadFileToString(f, &bytes).ok());
    bytes[bytes.size() / 2] ^= 0x01;
    ASSERT_TRUE(WriteStringToFile(f, bytes).ok());
  }

  auto db2 = Database::Open(repo.root(), CacheOpts());
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_EQ((*db2)->open_stats().cache_entries_quarantined, num_files);
  EXPECT_EQ((*db2)->open_stats().cache_entries_recovered, 0u);
  auto res = (*db2)->Query(kBroadQuery);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(CanonicalRows(*res->table), cold)
      << "total bit rot must degrade to a cold open, never wrong rows";
}

}  // namespace
}  // namespace dex
