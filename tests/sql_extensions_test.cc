// Tests for the SQL extensions beyond the paper's two queries: BETWEEN, IN,
// LIKE (with the dictionary fast path), NOT variants, and SELECT DISTINCT —
// phrased the way an explorer would.

#include <gtest/gtest.h>

#include "core/database.h"
#include "sql/parser.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

// ---------- parser-level ----------

TEST(SqlExtParser, BetweenDesugarsToRange) {
  auto s = sql::ParseSelect("SELECT * FROM F WHERE n BETWEEN 1 AND 5");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->where->ToString(), "((n >= 1) AND (n <= 5))");
}

TEST(SqlExtParser, NotBetween) {
  auto s = sql::ParseSelect("SELECT * FROM F WHERE n NOT BETWEEN 1 AND 5");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->ToString(), "(NOT ((n >= 1) AND (n <= 5)))");
}

TEST(SqlExtParser, InDesugarsToDisjunction) {
  auto s = sql::ParseSelect(
      "SELECT * FROM F WHERE station IN ('ISK', 'ANK', 'IZM')");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->ToString(),
            "(((station = 'ISK') OR (station = 'ANK')) OR (station = 'IZM'))");
}

TEST(SqlExtParser, NotIn) {
  auto s = sql::ParseSelect("SELECT * FROM F WHERE n NOT IN (1, 2)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->ToString(), "(NOT ((n = 1) OR (n = 2)))");
}

TEST(SqlExtParser, LikeParses) {
  auto s = sql::ParseSelect("SELECT * FROM F WHERE channel LIKE 'BH%'");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->kind(), ExprKind::kLike);
  EXPECT_EQ(s->where->like_pattern(), "BH%");
}

TEST(SqlExtParser, LikeRequiresStringPattern) {
  EXPECT_FALSE(sql::ParseSelect("SELECT * FROM F WHERE channel LIKE 42").ok());
}

TEST(SqlExtParser, DistinctFlagSet) {
  auto s = sql::ParseSelect("SELECT DISTINCT station FROM F");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->distinct);
}

TEST(SqlExtParser, BetweenInsideConjunction) {
  auto s = sql::ParseSelect(
      "SELECT * FROM R WHERE start_time BETWEEN 10 AND 20 AND record_id = 1");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->kind(), ExprKind::kAnd);
}

// ---------- LIKE matching semantics ----------

bool Match(const std::string& text, const std::string& pattern) {
  auto schema = std::make_shared<Schema>(
      Schema({{"s", DataType::kString, "T"}}));
  Batch b = Batch::Empty(schema);
  b.columns[0]->AppendString(text);
  auto bound = Expr::Like(Expr::ColumnRef("s"), pattern)->Bind(*schema);
  EXPECT_TRUE(bound.ok());
  auto mask = (*bound)->Evaluate(b);
  EXPECT_TRUE(mask.ok());
  return (*mask)->GetInt64(0) != 0;
}

TEST(SqlExtLike, ExactMatchNoWildcards) {
  EXPECT_TRUE(Match("BHE", "BHE"));
  EXPECT_FALSE(Match("BHE", "BHN"));
  EXPECT_FALSE(Match("BHE", "BH"));
  EXPECT_FALSE(Match("BH", "BHE"));
}

TEST(SqlExtLike, PercentWildcard) {
  EXPECT_TRUE(Match("BHE", "BH%"));
  EXPECT_TRUE(Match("BHE", "%E"));
  EXPECT_TRUE(Match("BHE", "%H%"));
  EXPECT_TRUE(Match("BHE", "%"));
  EXPECT_TRUE(Match("", "%"));
  EXPECT_FALSE(Match("LHE", "BH%"));
  EXPECT_TRUE(Match("BBHE", "B%HE"));
}

TEST(SqlExtLike, UnderscoreWildcard) {
  EXPECT_TRUE(Match("BHE", "B_E"));
  EXPECT_TRUE(Match("BHE", "___"));
  EXPECT_FALSE(Match("BHE", "____"));
  EXPECT_FALSE(Match("BHE", "__"));
}

TEST(SqlExtLike, CombinedWildcards) {
  EXPECT_TRUE(Match("OR.ISK.BHE.003.mseed", "%ISK%BHE%"));
  EXPECT_FALSE(Match("OR.ANK.BHE.003.mseed", "%ISK%BHE%"));
  EXPECT_TRUE(Match("abcde", "a%_e"));
  EXPECT_TRUE(Match("ae", "a%e"));
  EXPECT_FALSE(Match("ae", "a%_e"));  // needs at least one char before e
}

TEST(SqlExtLike, BacktrackingTorture) {
  EXPECT_TRUE(Match("aaaaaaaaab", "%a%a%b"));
  EXPECT_FALSE(Match("aaaaaaaaaa", "%a%a%b"));
}

TEST(SqlExtLike, RejectsNonStringOperand) {
  auto schema = std::make_shared<Schema>(
      Schema({{"n", DataType::kInt64, "T"}}));
  EXPECT_FALSE(Expr::Like(Expr::ColumnRef("n"), "%")->Bind(*schema).ok());
}

// ---------- end-to-end through the database ----------

class SqlExtDatabase : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new ScopedRepo("sql_ext", TinyRepoOptions());
    auto db = Database::Open(repo_->root(), {});
    ASSERT_TRUE(db.ok());
    db_ = new std::unique_ptr<Database>(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete repo_;
    repo_ = nullptr;
  }
  static ScopedRepo* repo_;
  static std::unique_ptr<Database>* db_;
};

ScopedRepo* SqlExtDatabase::repo_ = nullptr;
std::unique_ptr<Database>* SqlExtDatabase::db_ = nullptr;

TEST_F(SqlExtDatabase, DistinctStations) {
  auto r = (*db_)->Query("SELECT DISTINCT F.station FROM F ORDER BY F.station");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->num_rows(), 2u);
  EXPECT_EQ(r->table->GetValue(0, 0).str(), "ANK");
  EXPECT_EQ(r->table->GetValue(1, 0).str(), "ISK");
}

TEST_F(SqlExtDatabase, DistinctPairs) {
  auto r = (*db_)->Query(
      "SELECT DISTINCT F.station, F.channel FROM F "
      "ORDER BY F.station, F.channel");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table->num_rows(), 4u);  // 2 stations x 2 channels
}

TEST_F(SqlExtDatabase, LikeOnUri) {
  auto all = (*db_)->Query("SELECT COUNT(*) FROM F");
  auto isk = (*db_)->Query(
      "SELECT COUNT(*) FROM F WHERE F.uri LIKE '%ISK%'");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(isk.ok()) << isk.status().ToString();
  EXPECT_EQ(isk->table->GetValue(0, 0).int64(),
            all->table->GetValue(0, 0).int64() / 2);
}

TEST_F(SqlExtDatabase, InOverMetadataDrivesFilesOfInterest) {
  auto r = (*db_)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.channel IN ('BHE') AND F.station IN ('ISK', 'NOPE')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.two_stage.files_of_interest, 2u);  // ISK/BHE x 2 days
}

TEST_F(SqlExtDatabase, BetweenOnTimestamps) {
  auto between = (*db_)->Query(
      "SELECT COUNT(*) FROM R WHERE R.start_time "
      "BETWEEN '2010-01-01T00:00:00.000' AND '2010-01-01T23:59:59.999'");
  auto manual = (*db_)->Query(
      "SELECT COUNT(*) FROM R WHERE R.start_time >= '2010-01-01T00:00:00.000' "
      "AND R.start_time <= '2010-01-01T23:59:59.999'");
  ASSERT_TRUE(between.ok()) << between.status().ToString();
  ASSERT_TRUE(manual.ok());
  EXPECT_EQ(between->table->GetValue(0, 0).int64(),
            manual->table->GetValue(0, 0).int64());
  EXPECT_GT(between->table->GetValue(0, 0).int64(), 0);
}

TEST_F(SqlExtDatabase, NotLikeComplements) {
  auto like = (*db_)->Query("SELECT COUNT(*) FROM F WHERE F.uri LIKE '%ISK%'");
  auto not_like =
      (*db_)->Query("SELECT COUNT(*) FROM F WHERE F.uri NOT LIKE '%ISK%'");
  auto all = (*db_)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(like.ok());
  ASSERT_TRUE(not_like.ok()) << not_like.status().ToString();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(like->table->GetValue(0, 0).int64() +
                not_like->table->GetValue(0, 0).int64(),
            all->table->GetValue(0, 0).int64());
}

TEST_F(SqlExtDatabase, DistinctWithAggregatesRejected) {
  EXPECT_FALSE((*db_)->Query("SELECT DISTINCT COUNT(*) FROM F").ok());
  EXPECT_FALSE((*db_)->Query("SELECT DISTINCT * FROM F").ok());
}


// ---------- HAVING ----------

TEST_F(SqlExtDatabase, HavingFiltersGroups) {
  // Every (station, channel) group has 2 files (2 days) in the tiny repo.
  auto all = (*db_)->Query(
      "SELECT F.station, F.channel, COUNT(*) AS n FROM F "
      "GROUP BY F.station, F.channel HAVING COUNT(*) >= 2");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->table->num_rows(), 4u);
  auto none = (*db_)->Query(
      "SELECT F.station, COUNT(*) AS n FROM F GROUP BY F.station "
      "HAVING COUNT(*) > 100");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->table->num_rows(), 0u);
}

TEST_F(SqlExtDatabase, HavingOnHiddenAggregate) {
  // The HAVING aggregate (SUM) does not appear in the select list.
  auto r = (*db_)->Query(
      "SELECT R.uri FROM R GROUP BY R.uri HAVING SUM(R.n_samples) > 0 "
      "ORDER BY R.uri LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table->num_rows(), 3u);
  EXPECT_EQ(r->table->num_columns(), 1u) << "hidden aggregate must not leak";
}

TEST_F(SqlExtDatabase, HavingReusesSelectListAggregate) {
  auto r = (*db_)->Query(
      "SELECT F.station, COUNT(*) AS n FROM F GROUP BY F.station "
      "HAVING COUNT(*) = 4 ORDER BY F.station");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 2 channels x 2 days = 4 files per station.
  EXPECT_EQ(r->table->num_rows(), 2u);
}

TEST_F(SqlExtDatabase, HavingOnGroupColumn) {
  auto r = (*db_)->Query(
      "SELECT F.station, COUNT(*) AS n FROM F GROUP BY F.station "
      "HAVING F.station = 'ISK'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->num_rows(), 1u);
  EXPECT_EQ(r->table->GetValue(0, 0).str(), "ISK");
}

TEST_F(SqlExtDatabase, HavingOverActualData) {
  // HAVING works through the two-stage path too.
  auto r = (*db_)->Query(
      "SELECT F.channel, MAX(D.sample_value) AS peak FROM F "
      "JOIN D ON F.uri = D.uri GROUP BY F.channel "
      "HAVING MAX(D.sample_value) > -99999999 ORDER BY F.channel");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table->num_rows(), 2u);
}

TEST_F(SqlExtDatabase, HavingWithoutAggregatesRejected) {
  EXPECT_FALSE((*db_)->Query("SELECT station FROM F HAVING station = 'ISK'").ok());
}

TEST(SqlExtHavingParser, PlaceholdersGenerated) {
  auto s = sql::ParseSelect(
      "SELECT station FROM F GROUP BY station HAVING AVG(size_bytes) > 10");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_NE(s->having, nullptr);
  EXPECT_NE(s->having->ToString().find("#AGG#AVG#size_bytes"),
            std::string::npos);
  ASSERT_EQ(s->having_aggregate_args.size(), 1u);
  EXPECT_EQ(s->having_aggregate_args[0].first, "size_bytes");
}

}  // namespace
}  // namespace dex
