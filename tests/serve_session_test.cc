// The serving layer: admission control, overload shedding, fair scheduling,
// and the deterministic scripted-workload contract.

#include "serve/session_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "mseed/writer.h"
#include "obs/metrics.h"
#include "serve/script.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::serve::BackoffHintNanos;
using ::dex::serve::RunScriptDeterministic;
using ::dex::serve::RunScriptThreaded;
using ::dex::serve::ScriptOp;
using ::dex::serve::ScriptResult;
using ::dex::serve::ServeOptions;
using ::dex::serve::ServeScript;
using ::dex::serve::SessionManager;
using ::dex::serve::SessionOptions;
using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

constexpr const char* kMetaSql = "SELECT COUNT(*) FROM F";
constexpr const char* kJoinSql =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";

void SpinUntil(const std::function<bool()>& pred) {
  while (!pred()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(BackoffHint, ParsesTheTokenFromAShedStatus) {
  EXPECT_EQ(BackoffHintNanos(Status::Overloaded(
                "admission queue full (8 waiting); retry later; "
                "backoff_hint_nanos=9000000")),
            9000000u);
  EXPECT_EQ(BackoffHintNanos(Status::Overloaded("no hint here")), 0u);
  EXPECT_EQ(BackoffHintNanos(Status::OK()), 0u);
}

TEST(SessionManager, SubmitRunsQueriesWithSessionDefaults) {
  ScopedRepo repo("serve_basic", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  SessionManager mgr(db->get(), ServeOptions{});

  SessionOptions session;
  session.name = "alice";
  session.priority = ThreadPool::kPriorityInteractive;
  auto id = mgr.OpenSession(session);
  ASSERT_TRUE(id.ok());

  auto r = mgr.Submit(*id, kMetaSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r).stats.result_rows, 1u);
  EXPECT_EQ((*r).stats.epoch, (*db)->current_epoch());

  const SessionManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.sessions_active, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 0u);

  const auto sessions = mgr.ListSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].name, "alice");
  EXPECT_EQ(sessions[0].submitted, 1u);
  EXPECT_FALSE(sessions[0].closed);
}

TEST(SessionManager, UnknownAndClosedSessionsAreRefused) {
  ScopedRepo repo("serve_closed", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  SessionManager mgr(db->get(), ServeOptions{});

  EXPECT_TRUE(mgr.Submit(999, kMetaSql).status().IsNotFound());
  EXPECT_TRUE(mgr.CloseSession(999).IsNotFound());

  auto id = mgr.OpenSession({});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.CloseSession(*id).ok());
  EXPECT_FALSE(mgr.Submit(*id, kMetaSql).ok());
  const auto sessions = mgr.ListSessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_TRUE(sessions[0].closed);
  EXPECT_EQ(mgr.stats().sessions_active, 0u);
}

// One query parked at its stage boundary holds the single in-flight slot;
// the next arrival waits; the one after that finds the queue full and is
// shed immediately with a kOverloaded status carrying the backoff hint.
TEST(SessionManager, QueueFullShedsWithBackoffHint) {
  // This test asserts on registry contents, so it must not read counters a
  // prior test in this process published.
  obs::ScopedMetricsReset metrics_reset;
  ScopedRepo repo("serve_shed", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  ServeOptions serve;
  serve.max_inflight = 1;
  serve.queue_depth = 1;
  serve.shed_backoff_base_nanos = 1'000'000;
  SessionManager mgr(db->get(), serve);

  std::promise<void> reached_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();
  SessionOptions hog;
  hog.name = "hog";
  hog.priority = ThreadPool::kPriorityBackground;
  hog.defaults.breakpoint = [&, released = false](
                                const BreakpointInfo&) mutable {
    if (!released) {
      released = true;
      reached_promise.set_value();
      release.wait();
    }
    return BreakpointDecision::kContinue;
  };
  auto hog_id = mgr.OpenSession(hog);
  ASSERT_TRUE(hog_id.ok());
  SessionOptions inter;
  inter.name = "interactive";
  inter.priority = ThreadPool::kPriorityInteractive;
  inter.max_inflight = 4;
  auto inter_id = mgr.OpenSession(inter);
  ASSERT_TRUE(inter_id.ok());

  std::thread hog_thread([&] {
    auto r = mgr.Submit(*hog_id, kJoinSql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  reached_promise.get_future().wait();  // the hog now owns the only slot

  std::thread waiter_thread([&] {
    auto r = mgr.Submit(*inter_id, kMetaSql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  SpinUntil([&] { return mgr.stats().queued == 1; });

  // Queue full: shed synchronously, without blocking this thread.
  auto shed = mgr.Submit(*inter_id, kMetaSql);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status().ToString();
  // Hint scales with the queue occupancy seen at shed time (1 waiter).
  EXPECT_EQ(BackoffHintNanos(shed.status()), 2'000'000u);

  release_promise.set_value();
  hog_thread.join();
  waiter_thread.join();

  const SessionManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.waited, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queued, 0u);

  // Shed decisions surface in the metrics registry.
  const std::string metrics = obs::MetricsRegistry::Global().ToText();
  EXPECT_NE(metrics.find("serve.queries_shed"), std::string::npos);
  EXPECT_NE(metrics.find("serve.queue_wait_nanos"), std::string::npos);
}

// Waiters are granted in (priority desc, ticket asc) order: an interactive
// query that arrived *after* a background one still runs first.
TEST(SessionManager, InteractiveWaitersAreGrantedBeforeBackground) {
  ScopedRepo repo("serve_fair", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  ServeOptions serve;
  serve.max_inflight = 1;
  serve.queue_depth = 4;
  SessionManager mgr(db->get(), serve);

  std::promise<void> reached_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();
  std::mutex order_mu;
  std::vector<std::string> order;

  SessionOptions hog;
  hog.name = "hog";
  hog.priority = ThreadPool::kPriorityBackground;
  hog.defaults.breakpoint = [&, released = false](
                                const BreakpointInfo&) mutable {
    if (!released) {
      released = true;
      reached_promise.set_value();
      release.wait();
    }
    return BreakpointDecision::kContinue;
  };
  auto hog_id = mgr.OpenSession(hog);
  ASSERT_TRUE(hog_id.ok());

  auto tagged = [&](const std::string& name, int priority) {
    SessionOptions s;
    s.name = name;
    s.priority = priority;
    s.defaults.breakpoint = [&, name](const BreakpointInfo&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
      return BreakpointDecision::kContinue;
    };
    auto id = mgr.OpenSession(s);
    EXPECT_TRUE(id.ok());
    return *id;
  };
  const SessionManager::SessionId bg_id =
      tagged("bg", ThreadPool::kPriorityBackground);
  const SessionManager::SessionId it_id =
      tagged("it", ThreadPool::kPriorityInteractive);

  std::thread hog_thread([&] {
    auto r = mgr.Submit(*hog_id, kJoinSql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  reached_promise.get_future().wait();

  // Background waiter enqueues first, interactive second.
  std::thread bg_thread([&] {
    auto r = mgr.Submit(bg_id, kJoinSql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  SpinUntil([&] { return mgr.stats().queued == 1; });
  std::thread it_thread([&] {
    auto r = mgr.Submit(it_id, kJoinSql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  SpinUntil([&] { return mgr.stats().queued == 2; });

  release_promise.set_value();
  hog_thread.join();
  bg_thread.join();
  it_thread.join();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "it");
  EXPECT_EQ(order[1], "bg");
  EXPECT_EQ(mgr.stats().waited, 2u);
}

// Reentrancy regression (run under TSan in CI): concurrent queries that all
// trip over the same dead files race their quarantine writes (FileRegistry
// health marks) and the copy-on-write QUARANTINE-table publishes (epoch
// churn) against each other and against pinned readers. Every query must
// still degrade gracefully, and the registry must converge on exactly the
// set of victims.
TEST(SessionManager, ConcurrentQuarantineWritesConverge) {
  ScopedRepo repo("serve_quarantine", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());

  // Two files go permanently bad before anyone mounts them.
  std::vector<std::string> uris = (*db)->registry()->AllUris();
  ASSERT_GE(uris.size(), 2u);
  std::vector<std::string> victims(uris.begin(), uris.begin() + 2);
  for (const std::string& uri : victims) {
    auto entry = (*db)->registry()->Get(uri);
    ASSERT_TRUE(entry.ok());
    (*db)->disk()->fault_injector()->FailObject(entry->object);
  }
  (*db)->FlushBuffers();

  ServeOptions serve;
  serve.max_inflight = 4;
  serve.queue_depth = 64;  // nothing sheds; every thread's queries run
  SessionManager mgr(db->get(), serve);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SessionOptions session;
      session.name = "racer" + std::to_string(t);
      session.max_inflight = 2;
      auto id = mgr.OpenSession(session);
      if (!id.ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto r = mgr.Submit(*id, kJoinSql);
        if (!r.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The registry converged: exactly the victims are quarantined, and the
  // published QUARANTINE table agrees with it.
  for (const std::string& uri : victims) {
    EXPECT_TRUE((*db)->registry()->IsQuarantined(uri)) << uri;
  }
  auto qcount = (*db)->Query("SELECT COUNT(*) FROM QUARANTINE");
  ASSERT_TRUE(qcount.ok()) << qcount.status().ToString();
  EXPECT_EQ(qcount->table->GetValue(0, 0).int64(),
            static_cast<int64_t>(victims.size()));
  // Post-race queries are clean: the quarantined files are never reselected.
  auto rerun = (*db)->Query(kJoinSql);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->stats.files_failed, 0u);
}

// ---------------------------------------------------------------------------
// Scripted workloads.

/// 3 sessions — a background ingest hog, an interactive explorer, a normal
/// one — against a 2-slot gate with a 2-deep queue. Ops 4 and 5 arrive with
/// both the window and the queue full: deterministically shed.
ServeScript ContendedScript() {
  ServeScript script;
  script.serve.max_inflight = 2;
  script.serve.queue_depth = 2;

  SessionOptions ingest;
  ingest.name = "ingest";
  ingest.priority = ThreadPool::kPriorityBackground;
  ingest.max_inflight = 1;
  SessionOptions alice;
  alice.name = "alice";
  alice.priority = ThreadPool::kPriorityInteractive;
  alice.max_inflight = 4;
  SessionOptions bob;
  bob.name = "bob";
  bob.priority = ThreadPool::kPriorityNormal;
  bob.max_inflight = 4;
  script.sessions = {ingest, alice, bob};

  script.ops = {
      {ScriptOp::Kind::kQuery, 0, kJoinSql},   // 0: running (the hog)
      {ScriptOp::Kind::kQuery, 1, kMetaSql},   // 1: running
      {ScriptOp::Kind::kQuery, 2, kMetaSql},   // 2: queued
      {ScriptOp::Kind::kQuery, 1, kJoinSql},   // 3: queued
      {ScriptOp::Kind::kQuery, 2, kMetaSql},   // 4: shed
      {ScriptOp::Kind::kQuery, 1, kMetaSql},   // 5: shed
      {ScriptOp::Kind::kDrain, 0, ""},
      {ScriptOp::Kind::kRefresh, 0, ""},
      {ScriptOp::Kind::kQuery, 1, kMetaSql},   // 8: post-refresh epoch
      {ScriptOp::Kind::kQuery, 0, kJoinSql},   // 9: post-refresh epoch
  };
  return script;
}

TEST(ServeScript, DeterministicRunIsReproducible) {
  ScopedRepo repo("serve_script_repro", TinyRepoOptions());
  const ServeScript script = ContendedScript();

  ScriptResult results[2];
  for (int run = 0; run < 2; ++run) {
    auto db = Database::Open(repo.root(), {});
    ASSERT_TRUE(db.ok());
    auto r = RunScriptDeterministic(db->get(), script);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results[run] = *r;
  }

  EXPECT_EQ(results[0].fingerprint, results[1].fingerprint);
  EXPECT_EQ(results[0].admitted, 6u);
  EXPECT_EQ(results[0].queued, 2u);
  EXPECT_EQ(results[0].shed, 2u);
  EXPECT_EQ(results[0].refreshes, 1u);
  EXPECT_EQ(results[0].final_epoch, 2u);
  EXPECT_LE(results[0].p50_interactive_nanos, results[0].p99_interactive_nanos);

  // Spot-check the shed ops: kOverloaded, hint scaled by queue occupancy.
  const auto& outcomes = results[0].outcomes;
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_TRUE(outcomes[4].shed);
  EXPECT_EQ(outcomes[4].status, StatusCode::kOverloaded);
  EXPECT_EQ(outcomes[4].backoff_hint_nanos,
            script.serve.shed_backoff_base_nanos * 3);
  EXPECT_TRUE(outcomes[5].shed);
  EXPECT_TRUE(outcomes[2].queued);
  EXPECT_TRUE(outcomes[3].queued);
  // Pre-refresh admissions ran on epoch 1, post-refresh ones on epoch 2.
  EXPECT_EQ(outcomes[0].epoch, 1u);
  EXPECT_EQ(outcomes[6].epoch, 2u);
  EXPECT_EQ(outcomes[7].epoch, 2u);
}

TEST(ServeScript, DeterministicRunIsWorkerCountInvariant) {
  ScopedRepo repo("serve_script_workers", TinyRepoOptions());
  const ServeScript script = ContendedScript();

  // Only the *physical* pool size varies. The logical time model — the lane
  // count sim charges are list-scheduled onto (`two_stage.num_threads`) — is
  // part of the workload and stays pinned: charged latency may depend on how
  // much overlap you model, never on how many OS threads you have.
  ScriptResult results[2];
  const size_t worker_counts[2] = {1, 8};
  for (int run = 0; run < 2; ++run) {
    DatabaseOptions opts;
    opts.pool_threads = worker_counts[run];
    opts.two_stage.num_threads = 2;  // logical lanes: fixed
    opts.stage1_threads = worker_counts[run];
    auto db = Database::Open(repo.root(), opts);
    ASSERT_TRUE(db.ok());
    // Drop the buffers Open()'s header scan left resident so every mount
    // charges real sim time — otherwise invariance would hold trivially.
    (*db)->FlushBuffers();
    auto r = RunScriptDeterministic(db->get(), script);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results[run] = *r;
  }
  // Bit-identical: per-query results, shed decisions, epochs, charged sim
  // I/O, and the virtual latency timeline all survive the 1 -> 8 jump.
  EXPECT_EQ(results[0].fingerprint, results[1].fingerprint);
  // Non-trivial: at least one admitted query actually paid for I/O.
  uint64_t max_sim = 0;
  for (const auto& o : results[0].outcomes) {
    max_sim = std::max(max_sim, o.sim_io_nanos);
  }
  EXPECT_GT(max_sim, 0u);
}

TEST(ServeScript, RefreshMidScriptIsSnapshotIsolated) {
  ScopedRepo repo("serve_script_refresh", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query(kMetaSql);
  ASSERT_TRUE(before.ok());
  const int64_t files_before = before->table->GetValue(0, 0).int64();

  // New data lands *after* open; the script's kRefresh publishes it.
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               [] {
                                 mseed::RecordData rec;
                                 rec.network = "OR";
                                 rec.station = "NEWSTA";
                                 rec.channel = "BHE";
                                 rec.location = "00";
                                 rec.start_time_ms = 1262304000000LL;
                                 rec.sample_rate_hz = 1.0;
                                 for (int i = 0; i < 30; ++i)
                                   rec.samples.push_back(i);
                                 return std::vector<mseed::RecordData>{rec};
                               }())
                  .ok());

  ServeScript script;
  script.serve.max_inflight = 2;
  script.serve.queue_depth = 4;
  SessionOptions s;
  s.name = "explorer";
  s.max_inflight = 4;
  script.sessions = {s};
  script.ops = {
      {ScriptOp::Kind::kQuery, 0, kMetaSql},    // admitted pre-refresh
      {ScriptOp::Kind::kRefresh, 0, ""},        // publishes epoch 2
      {ScriptOp::Kind::kQuery, 0, kMetaSql},    // admitted post-refresh
  };
  auto r = RunScriptDeterministic(db->get(), script);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The first query was admitted before the refresh: although it executes
  // after the publish (at the final drain), it sees the pre-refresh file
  // count. The second sees the post-refresh count.
  ASSERT_EQ(r->outcomes.size(), 2u);
  EXPECT_EQ(r->outcomes[0].epoch, 1u);
  EXPECT_EQ(r->outcomes[1].epoch, 2u);
  EXPECT_NE(r->outcomes[0].result_hash, r->outcomes[1].result_hash);

  auto after = (*db)->Query(kMetaSql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->table->GetValue(0, 0).int64(), files_before + 1);
}

// Threaded mode exercises the real gate under contention (the TSan stress
// target). With a queue deep enough that nothing sheds, every query's
// result must match the deterministic run bit for bit.
TEST(ServeScript, ThreadedRunMatchesDeterministicResults) {
  ScopedRepo repo("serve_script_threaded", TinyRepoOptions());
  ServeScript script;
  script.serve.max_inflight = 2;
  script.serve.queue_depth = 64;  // nothing sheds
  SessionOptions ingest;
  ingest.name = "ingest";
  ingest.priority = ThreadPool::kPriorityBackground;
  SessionOptions alice;
  alice.name = "alice";
  alice.priority = ThreadPool::kPriorityInteractive;
  alice.max_inflight = 4;
  script.sessions = {ingest, alice};
  for (int i = 0; i < 4; ++i) {
    script.ops.push_back({ScriptOp::Kind::kQuery, 0, kJoinSql});
    script.ops.push_back({ScriptOp::Kind::kQuery, 1, kMetaSql});
    script.ops.push_back({ScriptOp::Kind::kQuery, 1, kJoinSql});
  }

  auto db_det = Database::Open(repo.root(), {});
  ASSERT_TRUE(db_det.ok());
  auto det = RunScriptDeterministic(db_det->get(), script);
  ASSERT_TRUE(det.ok()) << det.status().ToString();

  auto db_thr = Database::Open(repo.root(), {});
  ASSERT_TRUE(db_thr.ok());
  auto thr = RunScriptThreaded(db_thr->get(), script);
  ASSERT_TRUE(thr.ok()) << thr.status().ToString();

  ASSERT_EQ(det->outcomes.size(), thr->outcomes.size());
  EXPECT_EQ(det->shed, 0u);
  EXPECT_EQ(thr->shed, 0u);
  EXPECT_EQ(thr->admitted, det->admitted);
  for (size_t i = 0; i < det->outcomes.size(); ++i) {
    EXPECT_EQ(det->outcomes[i].status, thr->outcomes[i].status) << i;
    EXPECT_EQ(det->outcomes[i].epoch, thr->outcomes[i].epoch) << i;
    EXPECT_EQ(det->outcomes[i].result_hash, thr->outcomes[i].result_hash) << i;
    EXPECT_EQ(det->outcomes[i].result_rows, thr->outcomes[i].result_rows) << i;
    // Charged sim I/O is *not* compared: which join pays the cold mount and
    // which hits the cache depends on real execution order in threaded mode.
  }
}

}  // namespace
}  // namespace dex
