#include "engine/expr.h"

#include <gtest/gtest.h>

#include "common/time_utils.h"

namespace dex {
namespace {

SchemaPtr TestSchema() {
  return std::make_shared<Schema>(Schema({{"station", DataType::kString, "F"},
                                          {"n", DataType::kInt64, "F"},
                                          {"v", DataType::kDouble, "F"},
                                          {"t", DataType::kTimestamp, "F"}}));
}

Batch TestBatch() {
  Batch b = Batch::Empty(TestSchema());
  const char* stations[] = {"ISK", "ANK", "ISK", "IZM"};
  const int64_t ns[] = {1, 2, 3, 4};
  const double vs[] = {0.5, -1.0, 2.5, 0.0};
  const int64_t ts[] = {0, 1000, 2000, 3000};
  for (int i = 0; i < 4; ++i) {
    b.columns[0]->AppendString(stations[i]);
    b.columns[1]->AppendInt64(ns[i]);
    b.columns[2]->AppendDouble(vs[i]);
    b.columns[3]->AppendInt64(ts[i]);
  }
  return b;
}

Result<ColumnPtr> Eval(const ExprPtr& e) {
  const Batch b = TestBatch();
  DEX_ASSIGN_OR_RETURN(ExprPtr bound, e->Bind(*b.schema));
  return bound->Evaluate(b);
}

std::vector<int64_t> Bools(const ColumnPtr& col) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < col->size(); ++i) out.push_back(col->GetInt64(i));
  return out;
}

TEST(ExprTest, ColumnRefPassesThrough) {
  auto r = Eval(Expr::ColumnRef("n"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetInt64(2), 3);
}

TEST(ExprTest, QualifiedColumnRef) {
  auto r = Eval(Expr::ColumnRef("F.station"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetString(0), "ISK");
}

TEST(ExprTest, UnknownColumnFailsBinding) {
  EXPECT_FALSE(Expr::ColumnRef("ghost")->Bind(*TestSchema()).ok());
}

TEST(ExprTest, LiteralBroadcasts) {
  auto r = Eval(Expr::Lit(Value::Int64(9)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size(), 4u);
  EXPECT_EQ((*r)->GetInt64(3), 9);
}

TEST(ExprTest, IntComparison) {
  auto r = Eval(Expr::Compare(CompareOp::kGt, Expr::ColumnRef("n"),
                              Expr::Lit(Value::Int64(2))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bools(*r), (std::vector<int64_t>{0, 0, 1, 1}));
}

TEST(ExprTest, AllComparisonOps) {
  auto mk = [](CompareOp op) {
    return Expr::Compare(op, Expr::ColumnRef("n"), Expr::Lit(Value::Int64(2)));
  };
  EXPECT_EQ(Bools(*Eval(mk(CompareOp::kEq))), (std::vector<int64_t>{0, 1, 0, 0}));
  EXPECT_EQ(Bools(*Eval(mk(CompareOp::kNe))), (std::vector<int64_t>{1, 0, 1, 1}));
  EXPECT_EQ(Bools(*Eval(mk(CompareOp::kLt))), (std::vector<int64_t>{1, 0, 0, 0}));
  EXPECT_EQ(Bools(*Eval(mk(CompareOp::kLe))), (std::vector<int64_t>{1, 1, 0, 0}));
  EXPECT_EQ(Bools(*Eval(mk(CompareOp::kGt))), (std::vector<int64_t>{0, 0, 1, 1}));
  EXPECT_EQ(Bools(*Eval(mk(CompareOp::kGe))), (std::vector<int64_t>{0, 1, 1, 1}));
}

TEST(ExprTest, StringEquality) {
  auto r = Eval(Expr::Compare(CompareOp::kEq, Expr::ColumnRef("station"),
                              Expr::Lit(Value::String("ISK"))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bools(*r), (std::vector<int64_t>{1, 0, 1, 0}));
}

TEST(ExprTest, StringOrdering) {
  auto r = Eval(Expr::Compare(CompareOp::kLt, Expr::ColumnRef("station"),
                              Expr::Lit(Value::String("IS"))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bools(*r), (std::vector<int64_t>{0, 1, 0, 0}));  // only ANK < IS
}

TEST(ExprTest, MixedIntDoubleComparison) {
  auto r = Eval(Expr::Compare(CompareOp::kGe, Expr::ColumnRef("v"),
                              Expr::Lit(Value::Int64(0))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bools(*r), (std::vector<int64_t>{1, 0, 1, 1}));
}

TEST(ExprTest, StringVsNumberRejected) {
  auto r = Eval(Expr::Compare(CompareOp::kEq, Expr::ColumnRef("station"),
                              Expr::Lit(Value::Int64(1))));
  EXPECT_FALSE(r.ok());
}

TEST(ExprTest, TimestampLiteralCoercion) {
  // The paper's predicate style: t > '1970-01-01T00:00:01.000'.
  auto r = Eval(Expr::Compare(CompareOp::kGt, Expr::ColumnRef("t"),
                              Expr::Lit(Value::String("1970-01-01T00:00:01.000"))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Bools(*r), (std::vector<int64_t>{0, 0, 1, 1}));
}

TEST(ExprTest, NonIsoStringVsTimestampRejected) {
  auto r = Eval(Expr::Compare(CompareOp::kGt, Expr::ColumnRef("t"),
                              Expr::Lit(Value::String("yesterday"))));
  EXPECT_FALSE(r.ok());
}

TEST(ExprTest, AndOrNot) {
  const ExprPtr isk = Expr::Compare(CompareOp::kEq, Expr::ColumnRef("station"),
                                    Expr::Lit(Value::String("ISK")));
  const ExprPtr big = Expr::Compare(CompareOp::kGe, Expr::ColumnRef("n"),
                                    Expr::Lit(Value::Int64(3)));
  EXPECT_EQ(Bools(*Eval(Expr::And(isk, big))), (std::vector<int64_t>{0, 0, 1, 0}));
  EXPECT_EQ(Bools(*Eval(Expr::Or(isk, big))), (std::vector<int64_t>{1, 0, 1, 1}));
  EXPECT_EQ(Bools(*Eval(Expr::Not(isk))), (std::vector<int64_t>{0, 1, 0, 1}));
}

TEST(ExprTest, ArithmeticIntStaysInt) {
  auto r = Eval(Expr::Arith(ArithOp::kAdd, Expr::ColumnRef("n"),
                            Expr::Lit(Value::Int64(10))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), DataType::kInt64);
  EXPECT_EQ((*r)->GetInt64(0), 11);
}

TEST(ExprTest, ArithmeticMixedWidensToDouble) {
  auto r = Eval(Expr::Arith(ArithOp::kMul, Expr::ColumnRef("n"),
                            Expr::ColumnRef("v")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ((*r)->GetDouble(2), 7.5);
}

TEST(ExprTest, DivisionAlwaysDouble) {
  auto r = Eval(Expr::Arith(ArithOp::kDiv, Expr::ColumnRef("n"),
                            Expr::Lit(Value::Int64(2))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ((*r)->GetDouble(0), 0.5);
}

TEST(ExprTest, DivisionByZeroFails) {
  auto r = Eval(Expr::Arith(ArithOp::kDiv, Expr::ColumnRef("n"),
                            Expr::Lit(Value::Int64(0))));
  EXPECT_FALSE(r.ok());
}

TEST(ExprTest, ArithmeticOnStringsRejected) {
  auto r = Eval(Expr::Arith(ArithOp::kAdd, Expr::ColumnRef("station"),
                            Expr::Lit(Value::Int64(1))));
  EXPECT_FALSE(r.ok());
}

TEST(ExprTest, SplitAndRebuildConjuncts) {
  const ExprPtr a = Expr::Compare(CompareOp::kEq, Expr::ColumnRef("n"),
                                  Expr::Lit(Value::Int64(1)));
  const ExprPtr b = Expr::Compare(CompareOp::kGt, Expr::ColumnRef("v"),
                                  Expr::Lit(Value::Double(0)));
  const ExprPtr c = Expr::Compare(CompareOp::kLt, Expr::ColumnRef("t"),
                                  Expr::Lit(Value::Int64(5)));
  const ExprPtr all = Expr::And(Expr::And(a, b), c);
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(all, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), a->ToString());
  EXPECT_EQ(Expr::AndAll(conjuncts)->ToString(), all->ToString());
}

TEST(ExprTest, AndAllOfNothingIsTrue) {
  const ExprPtr t = Expr::AndAll({});
  EXPECT_EQ(t->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(t->literal().boolean());
}

TEST(ExprTest, CollectColumnNames) {
  const ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.station"),
                    Expr::Lit(Value::String("ISK"))),
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("n"),
                    Expr::ColumnRef("v")));
  std::vector<std::string> names;
  e->CollectColumnNames(&names);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "F.station");
}

TEST(ExprTest, AllColumnsIn) {
  const SchemaPtr s = TestSchema();
  EXPECT_TRUE(Expr::ColumnRef("n")->AllColumnsIn(*s));
  EXPECT_TRUE(Expr::ColumnRef("F.v")->AllColumnsIn(*s));
  EXPECT_FALSE(Expr::ColumnRef("R.uri")->AllColumnsIn(*s));
  EXPECT_TRUE(Expr::Lit(Value::Int64(1))->AllColumnsIn(*s));
}

TEST(ExprTest, ToStringRendersSqlish) {
  const ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.station"),
                    Expr::Lit(Value::String("ISK"))),
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("n"),
                    Expr::Lit(Value::Int64(5))));
  EXPECT_EQ(e->ToString(), "((F.station = 'ISK') AND (n > 5))");
}

TEST(ExprTest, EvaluateRowMatchesVectorized) {
  const Batch b = TestBatch();
  const ExprPtr e = Expr::Compare(CompareOp::kGt, Expr::ColumnRef("n"),
                                  Expr::Lit(Value::Int64(2)));
  auto bound = e->Bind(*b.schema);
  ASSERT_TRUE(bound.ok());
  auto vec = (*bound)->Evaluate(b);
  ASSERT_TRUE(vec.ok());
  for (size_t i = 0; i < b.num_rows(); ++i) {
    auto row = (*bound)->EvaluateRow(b, i);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->boolean(), (*vec)->GetInt64(i) != 0) << "row " << i;
  }
}

TEST(ExprTest, BindIsNonDestructive) {
  const ExprPtr e = Expr::ColumnRef("n");
  ASSERT_TRUE(e->Bind(*TestSchema()).ok());
  EXPECT_FALSE(e->bound()) << "original expression must stay unbound";
}

}  // namespace
}  // namespace dex
