// White-box tests for the run-time optimization phase: the exact plan shapes
// rewrite rule (1) produces, file decisions, and the informativeness
// estimator's bound extraction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/informativeness.h"
#include "core/seismic_schema.h"
#include "core/two_stage.h"
#include "io/sim_disk.h"
#include "sql/binder.h"
#include "engine/optimizer.h"

namespace dex {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest()
      : disk_(),
        catalog_(&disk_),
        registry_(&disk_),
        cache_(CacheManager::Options{CachePolicy::kAll,
                                     CacheGranularity::kFile, 1 << 30}),
        mounter_(&registry_, &cache_, StatsCollectorSet{}, nullptr, &format_) {
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("F", MakeFileSchema()),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("R", MakeRecordSchema()),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("D", MakeDataSchema()),
                              TableKind::kActual)
                    .ok());
  }

  TwoStageExecutor MakeExecutor(TwoStageOptions options = {}) {
    return TwoStageExecutor(&catalog_, &registry_, &cache_, &mounter_, nullptr,
                            options);
  }

  PlanPtr SplitQuery(const std::string& sql) {
    auto plan = sql::PlanQuery(sql, catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto pushed = PushDownPredicates(*plan, catalog_);
    EXPECT_TRUE(pushed.ok());
    auto split = SplitPlan(*pushed, catalog_);
    EXPECT_TRUE(split.ok());
    return split->plan;
  }

  static int CountKind(const PlanPtr& p, PlanKind kind) {
    int n = p->kind == kind ? 1 : 0;
    for (const auto& c : p->children) n += CountKind(c, kind);
    return n;
  }

  static PlanPtr FindKind(const PlanPtr& p, PlanKind kind) {
    if (p->kind == kind) return p;
    for (const auto& c : p->children) {
      if (PlanPtr f = FindKind(c, kind)) return f;
    }
    return nullptr;
  }

  SimDisk disk_;
  Catalog catalog_;
  FileRegistry registry_;
  CacheManager cache_;
  MseedAdapter format_;
  Mounter mounter_;
};

const char* kMixedQuery =
    "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
    "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
    "WHERE F.station = 'ISK' AND D.sample_time > 100";

TEST_F(RewriteTest, StageBreakBecomesResultScan) {
  auto exec = MakeExecutor();
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(
      split, "__qf", {{"u1", FileDecision::Action::kMount}}, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(CountKind(*rewritten, PlanKind::kStageBreak), 0);
  const PlanPtr rs = FindKind(*rewritten, PlanKind::kResultScan);
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->result_id, "__qf");
}

TEST_F(RewriteTest, MountBranchesCarryFusedSelection) {
  auto exec = MakeExecutor();
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(
      split, "__qf",
      {{"u1", FileDecision::Action::kMount},
       {"u2", FileDecision::Action::kMount}},
      nullptr);
  ASSERT_TRUE(rewritten.ok());
  const PlanPtr union_node = FindKind(*rewritten, PlanKind::kUnion);
  ASSERT_NE(union_node, nullptr);
  ASSERT_EQ(union_node->children.size(), 2u);
  for (const PlanPtr& b : union_node->children) {
    EXPECT_EQ(b->kind, PlanKind::kMount);
    ASSERT_NE(b->predicate, nullptr) << "selection must fuse into the mount";
    EXPECT_NE(b->predicate->ToString().find("sample_time"), std::string::npos);
  }
}

TEST_F(RewriteTest, CacheScanBranchesWrapSelectionInFilter) {
  auto exec = MakeExecutor();
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(
      split, "__qf",
      {{"u1", FileDecision::Action::kCacheScan},
       {"u2", FileDecision::Action::kMount}},
      nullptr);
  ASSERT_TRUE(rewritten.ok());
  const PlanPtr union_node = FindKind(*rewritten, PlanKind::kUnion);
  ASSERT_NE(union_node, nullptr);
  EXPECT_EQ(union_node->children[0]->kind, PlanKind::kFilter);
  EXPECT_EQ(union_node->children[0]->children[0]->kind, PlanKind::kCacheScan);
  EXPECT_EQ(union_node->children[1]->kind, PlanKind::kMount);
}

TEST_F(RewriteTest, SkippedFilesProduceNoBranches) {
  auto exec = MakeExecutor();
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(
      split, "__qf",
      {{"u1", FileDecision::Action::kSkip},
       {"u2", FileDecision::Action::kMount},
       {"u3", FileDecision::Action::kSkip}},
      nullptr);
  ASSERT_TRUE(rewritten.ok());
  const PlanPtr union_node = FindKind(*rewritten, PlanKind::kUnion);
  ASSERT_NE(union_node, nullptr);
  EXPECT_EQ(union_node->children.size(), 1u);
}

TEST_F(RewriteTest, ZeroFilesBecomesEmptyResultScan) {
  auto exec = MakeExecutor();
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(split, "__qf", {}, nullptr);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(CountKind(*rewritten, PlanKind::kUnion), 0);
  EXPECT_EQ(CountKind(*rewritten, PlanKind::kMount), 0);
  // Two result-scans: Q_f's and the empty-relation placeholder.
  EXPECT_EQ(CountKind(*rewritten, PlanKind::kResultScan), 2);
}

TEST_F(RewriteTest, NoPushdownLeavesFilterAboveUnion) {
  TwoStageOptions options;
  options.push_selection_into_union = false;
  auto exec = MakeExecutor(options);
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(
      split, "__qf", {{"u1", FileDecision::Action::kMount}}, nullptr);
  ASSERT_TRUE(rewritten.ok());
  const PlanPtr union_node = FindKind(*rewritten, PlanKind::kUnion);
  ASSERT_NE(union_node, nullptr);
  EXPECT_EQ(union_node->children[0]->kind, PlanKind::kMount);
  EXPECT_EQ(union_node->children[0]->predicate, nullptr);
  // There must be a Filter somewhere above the union carrying p3.
  const PlanPtr filter = FindKind(*rewritten, PlanKind::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_NE(filter->predicate->ToString().find("sample_time"),
            std::string::npos);
}

TEST_F(RewriteTest, StrategyBDistributesJoin) {
  TwoStageOptions options;
  options.distribute_join_over_union = true;
  auto exec = MakeExecutor(options);
  const PlanPtr split = SplitQuery(kMixedQuery);
  auto rewritten = exec.RewriteStage2(
      split, "__qf",
      {{"u1", FileDecision::Action::kMount},
       {"u2", FileDecision::Action::kMount}},
      nullptr);
  ASSERT_TRUE(rewritten.ok());
  // The union now sits ABOVE per-file joins: Union(Join(Mount, RS), ...).
  const PlanPtr union_node = FindKind(*rewritten, PlanKind::kUnion);
  ASSERT_NE(union_node, nullptr);
  ASSERT_EQ(union_node->children.size(), 2u);
  for (const PlanPtr& b : union_node->children) {
    EXPECT_EQ(b->kind, PlanKind::kJoin);
    EXPECT_EQ(b->children[0]->kind, PlanKind::kMount);
  }
}

TEST_F(RewriteTest, FilesOfInterestDeduplicates) {
  auto schema = std::make_shared<Schema>(
      Schema({{"uri", DataType::kString, "F"}, {"n", DataType::kInt64, "R"}}));
  auto t = std::make_shared<Table>("qf", schema);
  for (const char* uri : {"a", "b", "a", "c", "b", "a"}) {
    ASSERT_TRUE(t->AppendRow({Value::String(uri), Value::Int64(1)}).ok());
  }
  auto files = TwoStageExecutor::FilesOfInterest(t);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(*files, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(RewriteTest, FilesOfInterestRequiresUriColumn) {
  auto schema = std::make_shared<Schema>(
      Schema({{"n", DataType::kInt64, "R"}}));
  auto t = std::make_shared<Table>("qf", schema);
  EXPECT_FALSE(TwoStageExecutor::FilesOfInterest(t).ok());
}

TEST_F(RewriteTest, FindActualScanPredicateLocatesP3) {
  const PlanPtr split = SplitQuery(kMixedQuery);
  const ExprPtr pred =
      TwoStageExecutor::FindActualScanPredicate(split, catalog_);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->ToString(), "(D.sample_time > 100)");
}

TEST_F(RewriteTest, FindActualScanPredicateNullWhenNone) {
  const PlanPtr split = SplitQuery(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK'");
  EXPECT_EQ(TwoStageExecutor::FindActualScanPredicate(split, catalog_), nullptr);
}

// ---------- ExtractBounds ----------

TEST(ExtractBoundsTest, SimpleRange) {
  const ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("D.sample_time"),
                    Expr::Lit(Value::Int64(10))),
      Expr::Compare(CompareOp::kLt, Expr::ColumnRef("D.sample_time"),
                    Expr::Lit(Value::Int64(20))));
  double lo, hi;
  ASSERT_TRUE(ExtractBounds(pred, "sample_time", &lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 10);
  EXPECT_DOUBLE_EQ(hi, 20);
}

TEST(ExtractBoundsTest, MirroredLiteralOnLeft) {
  // 10 < x  ≡  x > 10.
  const ExprPtr pred = Expr::Compare(
      CompareOp::kLt, Expr::Lit(Value::Int64(10)), Expr::ColumnRef("v"));
  double lo, hi;
  ASSERT_TRUE(ExtractBounds(pred, "v", &lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 10);
  EXPECT_TRUE(std::isinf(hi));
}

TEST(ExtractBoundsTest, EqualityPinsBothBounds) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kEq, Expr::ColumnRef("v"), Expr::Lit(Value::Double(7.5)));
  double lo, hi;
  ASSERT_TRUE(ExtractBounds(pred, "v", &lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 7.5);
  EXPECT_DOUBLE_EQ(hi, 7.5);
}

TEST(ExtractBoundsTest, IsoStringLiteralsParsed) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kGe, Expr::ColumnRef("sample_time"),
      Expr::Lit(Value::String("1970-01-01T00:00:01.000")));
  double lo, hi;
  ASSERT_TRUE(ExtractBounds(pred, "sample_time", &lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 1000);
}

TEST(ExtractBoundsTest, OtherColumnsIgnored) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kGt, Expr::ColumnRef("other"), Expr::Lit(Value::Int64(10)));
  double lo, hi;
  EXPECT_FALSE(ExtractBounds(pred, "sample_time", &lo, &hi));
}

TEST(ExtractBoundsTest, NullAndNonComparisonPredicates) {
  double lo, hi;
  EXPECT_FALSE(ExtractBounds(nullptr, "v", &lo, &hi));
  EXPECT_FALSE(ExtractBounds(Expr::Lit(Value::Bool(true)), "v", &lo, &hi));
  // Column-vs-column comparisons carry no literal bounds.
  EXPECT_FALSE(ExtractBounds(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("v"), Expr::ColumnRef("w")),
      "v", &lo, &hi));
}

TEST(SummarizeTimeWindowTest, PureWindowRecognized) {
  const ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("D.sample_time"),
                    Expr::Lit(Value::Int64(10))),
      Expr::Compare(CompareOp::kLt, Expr::ColumnRef("D.sample_time"),
                    Expr::Lit(Value::Int64(20))));
  const CachedWindow w = SummarizeTimeWindow(pred);
  EXPECT_TRUE(w.pure);
  EXPECT_DOUBLE_EQ(w.lo, 10);
  EXPECT_DOUBLE_EQ(w.hi, 20);
}

TEST(SummarizeTimeWindowTest, MixedPredicatesAreImpure) {
  // sample_time window AND a value bound: not a pure window.
  const ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("sample_time"),
                    Expr::Lit(Value::Int64(10))),
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("sample_value"),
                    Expr::Lit(Value::Int64(5))));
  EXPECT_FALSE(SummarizeTimeWindow(pred).pure);
  EXPECT_FALSE(SummarizeTimeWindow(nullptr).pure);
  // <> makes the tuple set non-contiguous.
  EXPECT_FALSE(SummarizeTimeWindow(
                   Expr::Compare(CompareOp::kNe, Expr::ColumnRef("sample_time"),
                                 Expr::Lit(Value::Int64(10))))
                   .pure);
}

TEST(ExtractBoundsTest, TightestBoundWins) {
  const ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("v"),
                    Expr::Lit(Value::Int64(5))),
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("v"),
                    Expr::Lit(Value::Int64(15))));
  double lo, hi;
  ASSERT_TRUE(ExtractBounds(pred, "v", &lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 15);
}

}  // namespace
}  // namespace dex
