#include "sql/parser.h"

#include <gtest/gtest.h>

namespace dex::sql {
namespace {

SelectStmt MustParse(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
  return r.ok() ? *r : SelectStmt{};
}

TEST(ParserTest, MinimalSelectStar) {
  const SelectStmt s = MustParse("SELECT * FROM F");
  EXPECT_TRUE(s.select_star);
  EXPECT_EQ(s.from.name, "F");
  EXPECT_TRUE(s.joins.empty());
  EXPECT_EQ(s.where, nullptr);
  EXPECT_EQ(s.limit, -1);
}

TEST(ParserTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseSelect("SELECT * FROM F;").ok());
}

TEST(ParserTest, SelectListWithAliases) {
  const SelectStmt s =
      MustParse("SELECT station AS st, size_bytes FROM F");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].alias, "st");
  EXPECT_FALSE(s.items[0].is_aggregate);
  EXPECT_EQ(s.items[1].expr->column_name(), "size_bytes");
}

TEST(ParserTest, Aggregates) {
  const SelectStmt s = MustParse(
      "SELECT COUNT(*), AVG(D.sample_value), MIN(n), MAX(n), SUM(n) FROM D");
  ASSERT_EQ(s.items.size(), 5u);
  EXPECT_TRUE(s.items[0].is_aggregate);
  EXPECT_TRUE(s.items[0].agg_star);
  EXPECT_EQ(s.items[0].agg_fn, AggFunc::kCount);
  EXPECT_EQ(s.items[1].agg_fn, AggFunc::kAvg);
  EXPECT_EQ(s.items[1].expr->column_name(), "D.sample_value");
  EXPECT_EQ(s.items[2].agg_fn, AggFunc::kMin);
  EXPECT_EQ(s.items[3].agg_fn, AggFunc::kMax);
  EXPECT_EQ(s.items[4].agg_fn, AggFunc::kSum);
}

TEST(ParserTest, StarOnlyForCount) {
  EXPECT_FALSE(ParseSelect("SELECT AVG(*) FROM D").ok());
}

TEST(ParserTest, JoinChain) {
  const SelectStmt s = MustParse(
      "SELECT * FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id");
  ASSERT_EQ(s.joins.size(), 2u);
  EXPECT_EQ(s.joins[0].table.name, "R");
  EXPECT_EQ(s.joins[1].table.name, "D");
  EXPECT_EQ(s.joins[1].on->kind(), ExprKind::kAnd);
}

TEST(ParserTest, WhereWithPrecedence) {
  const SelectStmt s =
      MustParse("SELECT * FROM F WHERE a = 1 OR b = 2 AND c = 3");
  // AND binds tighter: a=1 OR (b=2 AND c=3).
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind(), ExprKind::kOr);
  EXPECT_EQ(s.where->children()[1]->kind(), ExprKind::kAnd);
}

TEST(ParserTest, NotAndParentheses) {
  const SelectStmt s =
      MustParse("SELECT * FROM F WHERE NOT (a = 1 OR b = 2)");
  EXPECT_EQ(s.where->kind(), ExprKind::kNot);
  EXPECT_EQ(s.where->children()[0]->kind(), ExprKind::kOr);
}

TEST(ParserTest, ArithmeticPrecedence) {
  const SelectStmt s = MustParse("SELECT a + b * 2 FROM F");
  const ExprPtr e = s.items[0].expr;
  ASSERT_EQ(e->kind(), ExprKind::kArithmetic);
  EXPECT_EQ(e->arith_op(), ArithOp::kAdd);
  EXPECT_EQ(e->children()[1]->kind(), ExprKind::kArithmetic);
  EXPECT_EQ(e->children()[1]->arith_op(), ArithOp::kMul);
}

TEST(ParserTest, UnaryMinus) {
  const SelectStmt s = MustParse("SELECT * FROM F WHERE v > -5");
  EXPECT_EQ(s.where->children()[1]->ToString(), "(0 - 5)");
}

TEST(ParserTest, GroupBy) {
  const SelectStmt s = MustParse(
      "SELECT station, COUNT(*) FROM F GROUP BY station, channel");
  ASSERT_EQ(s.group_by.size(), 2u);
  EXPECT_EQ(s.group_by[0]->column_name(), "station");
}

TEST(ParserTest, OrderByWithDirections) {
  const SelectStmt s = MustParse(
      "SELECT * FROM F ORDER BY station DESC, uri ASC, mtime");
  ASSERT_EQ(s.order_by.size(), 3u);
  EXPECT_FALSE(s.order_by[0].second);
  EXPECT_TRUE(s.order_by[1].second);
  EXPECT_TRUE(s.order_by[2].second);
}

TEST(ParserTest, Limit) {
  const SelectStmt s = MustParse("SELECT * FROM F LIMIT 10");
  EXPECT_EQ(s.limit, 10);
  EXPECT_FALSE(ParseSelect("SELECT * FROM F LIMIT abc").ok());
}

TEST(ParserTest, ThePaperQuery1Parses) {
  const SelectStmt s = MustParse(R"(
      SELECT AVG(D.sample_value)
      FROM F JOIN R ON F.uri = R.uri
             JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
      WHERE F.station = 'ISK' AND F.channel = 'BHE'
        AND R.start_time > '2010-01-12T00:00:00.000'
        AND R.start_time < '2010-01-12T23:59:59.999'
        AND D.sample_time > '2010-01-12T22:15:00.000'
        AND D.sample_time < '2010-01-12T22:15:02.000';)");
  EXPECT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.items[0].is_aggregate);
  EXPECT_EQ(s.joins.size(), 2u);
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(s.where, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 6u);
}

TEST(ParserTest, ThePaperQuery2Parses) {
  const SelectStmt s = MustParse(R"(
      SELECT D.sample_time, D.sample_value
      FROM F JOIN R ON F.uri = R.uri
             JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
      WHERE F.station = 'ISK'
        AND R.start_time > '2010-01-12T00:00:00.000'
        AND R.start_time < '2010-01-12T23:59:59.999'
        AND D.sample_time > '2010-01-12T22:15:00.000'
        AND D.sample_time < '2010-01-12T22:15:02.000';)");
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_FALSE(s.items[0].is_aggregate);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  const auto r = ParseSelect("SELECT FROM");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("UPDATE F SET x = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT * F").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM F JOIN R").ok());         // no ON
  EXPECT_FALSE(ParseSelect("SELECT * FROM F WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM F GROUP station").ok());  // no BY
  EXPECT_FALSE(ParseSelect("SELECT * FROM F trailing junk").ok());
  EXPECT_FALSE(ParseSelect("SELECT a, FROM F").ok());
  EXPECT_FALSE(ParseSelect("SELECT (a FROM F").ok());
}

}  // namespace
}  // namespace dex::sql
