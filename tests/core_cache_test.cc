#include "core/cache_manager.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace dex {
namespace {

TablePtr MakeData(int rows) {
  auto schema = std::make_shared<Schema>(
      Schema({{"v", DataType::kInt64, "D"}}));
  auto t = std::make_shared<Table>("D", schema);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::Int64(i)}).ok());
  }
  return t;
}

CacheManager::Options LruOptions(uint64_t capacity = 1 << 20) {
  CacheManager::Options o;
  o.policy = CachePolicy::kLru;
  o.granularity = CacheGranularity::kFile;
  o.capacity_bytes = capacity;
  return o;
}

TEST(CacheTest, NonePolicyNeverCaches) {
  CacheManager cache;  // default: kNone (the paper's discard-always design)
  cache.Insert("u1", "", 100, MakeData(10));
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_FALSE(cache.Probe("u1", "", 100));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, HitAfterInsert) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "", 100, MakeData(10));
  EXPECT_TRUE(cache.Probe("u1", "", 100));
  EXPECT_EQ(cache.stats().hits, 1u);
  auto data = cache.Lookup("u1");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->num_rows(), 10u);
}

TEST(CacheTest, MissOnUnknownUri) {
  CacheManager cache(LruOptions());
  EXPECT_FALSE(cache.Probe("ghost", "", 1));
  EXPECT_FALSE(cache.Lookup("ghost").ok());
}

TEST(CacheTest, MtimeChangeInvalidates) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "", 100, MakeData(10));
  EXPECT_FALSE(cache.Probe("u1", "", 101)) << "stale entry must not hit";
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.num_entries(), 0u) << "stale entry must be dropped";
}

TEST(CacheTest, LruEvictsByCapacity) {
  // Capacity for roughly one 1000-row table.
  CacheManager cache(LruOptions(10 * 1024));
  cache.Insert("u1", "", 1, MakeData(1000));
  cache.Insert("u2", "", 1, MakeData(1000));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Probe("u1", "", 1));
  EXPECT_TRUE(cache.Probe("u2", "", 1));
}

TEST(CacheTest, LruKeepsRecentlyUsed) {
  CacheManager cache(LruOptions(20 * 1024));
  cache.Insert("u1", "", 1, MakeData(1000));  // ~8KB
  cache.Insert("u2", "", 1, MakeData(1000));
  EXPECT_TRUE(cache.Probe("u1", "", 1));      // refresh u1
  cache.Insert("u3", "", 1, MakeData(1000));  // evicts u2
  EXPECT_TRUE(cache.Probe("u1", "", 1));
  EXPECT_FALSE(cache.Probe("u2", "", 1));
  EXPECT_TRUE(cache.Probe("u3", "", 1));
}

TEST(CacheTest, AllPolicyNeverEvicts) {
  CacheManager::Options o = LruOptions(1);  // capacity would evict under LRU
  o.policy = CachePolicy::kAll;
  CacheManager cache(o);
  cache.Insert("u1", "", 1, MakeData(1000));
  cache.Insert("u2", "", 1, MakeData(1000));
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheTest, ReinsertReplaces) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "", 1, MakeData(5));
  cache.Insert("u1", "", 2, MakeData(7));
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_TRUE(cache.Probe("u1", "", 2));
  auto data = cache.Lookup("u1");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->num_rows(), 7u);
}

TEST(CacheTest, FileGranularityIgnoresPredicate) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "", 1, MakeData(10));
  // File-granular hit regardless of the query's pushed-down selection.
  EXPECT_TRUE(cache.Probe("u1", "", 1));
}

TEST(CacheTest, FileGranularityRefusesFilteredInserts) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "(v > 5)", 1, MakeData(4));  // filtered data
  EXPECT_EQ(cache.num_entries(), 0u)
      << "file-granular cache must not store partial file contents";
}

TEST(CacheTest, TupleGranularityMatchesExactPredicate) {
  CacheManager::Options o = LruOptions();
  o.granularity = CacheGranularity::kTuple;
  CacheManager cache(o);
  cache.Insert("u1", "(v > 5)", 1, MakeData(4));
  EXPECT_TRUE(cache.Probe("u1", "(v > 5)", 1));
  // A different selection cannot be served: "we need to mount the whole
  // file even if there is one required tuple missing in the cache".
  EXPECT_FALSE(cache.Probe("u1", "(v > 3)", 1));
  EXPECT_FALSE(cache.Probe("u1", "", 1));
}

TEST(CacheTest, WouldHitDoesNotMutate) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "", 1, MakeData(10));
  const CacheStats before = cache.stats();
  EXPECT_TRUE(cache.WouldHit("u1", "", 1));
  EXPECT_FALSE(cache.WouldHit("u1", "", 2));
  EXPECT_FALSE(cache.WouldHit("ghost", "", 1));
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);
}

TEST(CacheTest, ClearDropsEverything) {
  CacheManager cache(LruOptions());
  cache.Insert("u1", "", 1, MakeData(10));
  cache.Insert("u2", "", 1, MakeData(10));
  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_FALSE(cache.Probe("u1", "", 1));
}

TEST(CacheTest, TupleWindowSubsumptionServesNarrowerQueries) {
  CacheManager::Options o = LruOptions();
  o.granularity = CacheGranularity::kTuple;
  CacheManager cache(o);
  CachedWindow cached{true, 1000.0, 2000.0};
  cache.Insert("u1", "(t > 1000 AND t < 2000)", 1, MakeData(10), &cached);
  // Narrower window, different repr: subsumption hit.
  CachedWindow narrower{true, 1200.0, 1300.0};
  EXPECT_TRUE(cache.Probe("u1", "(t > 1200 AND t < 1300)", 1, &narrower));
  EXPECT_TRUE(cache.WouldHit("u1", "(t > 1200 AND t < 1300)", 1, &narrower));
  // Wider or shifted windows miss.
  CachedWindow wider{true, 500.0, 2500.0};
  EXPECT_FALSE(cache.Probe("u1", "(t > 500 AND t < 2500)", 1, &wider));
  CachedWindow shifted{true, 1500.0, 2500.0};
  EXPECT_FALSE(cache.Probe("u1", "x", 1, &shifted));
  // Non-pure query predicates never subsume.
  CachedWindow impure{false, 1200.0, 1300.0};
  EXPECT_FALSE(cache.Probe("u1", "x", 1, &impure));
  // Non-pure cached entries never serve by window.
  CachedWindow impure_cached{false, 0, 0};
  cache.Insert("u2", "(v > 5)", 1, MakeData(10), &impure_cached);
  EXPECT_FALSE(cache.Probe("u2", "y", 1, &narrower));
}

TEST(CacheTest, BytesUsedTracksInsertsAndEvictions) {
  CacheManager cache(LruOptions());
  EXPECT_EQ(cache.bytes_used(), 0u);
  cache.Insert("u1", "", 1, MakeData(100));
  const uint64_t one = cache.bytes_used();
  EXPECT_GT(one, 0u);
  cache.Insert("u2", "", 1, MakeData(100));
  EXPECT_GT(cache.bytes_used(), one);
  cache.Clear();
  EXPECT_EQ(cache.bytes_used(), 0u);
}

}  // namespace
}  // namespace dex
