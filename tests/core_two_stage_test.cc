#include "core/two_stage.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::DualDatabase;
using ::dex::testing::ExpectSameResults;
using ::dex::testing::OpenDual;
using ::dex::testing::ScopedRepo;
using ::dex::testing::SmallRepoOptions;
using ::dex::testing::TinyRepoOptions;

/// The main correctness property of the whole system: automated lazy
/// ingestion must answer every query exactly like eager ingestion.
class AliEquivalence : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    repo_ = new ScopedRepo("ali_equivalence", SmallRepoOptions());
    dual_ = new DualDatabase(OpenDual(repo_->root()));
  }
  static void TearDownTestSuite() {
    delete dual_;
    dual_ = nullptr;
    delete repo_;
    repo_ = nullptr;
  }
  static ScopedRepo* repo_;
  static DualDatabase* dual_;
};

ScopedRepo* AliEquivalence::repo_ = nullptr;
DualDatabase* AliEquivalence::dual_ = nullptr;

TEST_P(AliEquivalence, SameResultsAsEagerIngestion) {
  ASSERT_NE(dual_->ali, nullptr);
  ASSERT_NE(dual_->ei, nullptr);
  ExpectSameResults(dual_->ali.get(), dual_->ei.get(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    QueryBattery, AliEquivalence,
    ::testing::Values(
        // Metadata browsing (stage-1-only under ALi).
        "SELECT * FROM F ORDER BY F.uri",
        "SELECT F.station, COUNT(*) AS n FROM F GROUP BY F.station",
        "SELECT COUNT(*) FROM R",
        "SELECT R.uri, MIN(R.start_time) AS lo, MAX(R.end_time) AS hi "
        "FROM R GROUP BY R.uri ORDER BY R.uri LIMIT 5",
        // The paper's Query 1 (window adapted to the 0.02 Hz test data).
        "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
        "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
        "AND R.start_time > '2010-01-01T00:00:00.000' "
        "AND R.start_time < '2010-01-01T23:59:59.999' "
        "AND D.sample_time > '2010-01-01T06:00:00.000' "
        "AND D.sample_time < '2010-01-01T12:00:00.000'",
        // The paper's Query 2: waveform retrieval across all channels.
        "SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri "
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
        "WHERE F.station = 'ISK' "
        "AND R.start_time > '2010-01-01T00:00:00.000' "
        "AND R.start_time < '2010-01-01T23:59:59.999' "
        "AND D.sample_time > '2010-01-01T06:00:00.000' "
        "AND D.sample_time < '2010-01-01T06:30:00.000'",
        // Different join order (the paper's m1 ⋈ (a1 ⋈ m2) case).
        "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
        "JOIN R ON D.uri = R.uri AND D.record_id = R.record_id "
        "WHERE F.channel = 'BHN'",
        // Aggregation grouped by metadata column over joined actual data.
        "SELECT F.station, COUNT(*) AS n, AVG(D.sample_value) AS mean "
        "FROM F JOIN D ON F.uri = D.uri GROUP BY F.station ORDER BY F.station",
        // Selective predicate on actual data only (value hunt).
        "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ANK' AND D.sample_value > 1000",
        // Empty files-of-interest: no station 'XXX' exists.
        "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'XXX'",
        // Actual-data-only query (no metadata restriction: mounts all files).
        "SELECT COUNT(*) FROM D",
        "SELECT MIN(D.sample_value) AS lo, MAX(D.sample_value) AS hi FROM D",
        // Record-level metadata predicate without file-level predicate.
        "SELECT COUNT(*) FROM R JOIN D ON R.uri = D.uri "
        "AND R.record_id = D.record_id WHERE R.record_id = 1",
        // Arithmetic in select list over joined data.
        "SELECT D.sample_value * 2 AS doubled FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
        "AND D.sample_value > 500 ORDER BY doubled LIMIT 20",
        // MIN/MAX over strings through the two-stage path.
        "SELECT MIN(F.uri) AS first_uri FROM F JOIN D ON F.uri = D.uri "
        "WHERE D.sample_value > 2000"));

/// Two-stage-specific behaviours beyond black-box equivalence.
class TwoStageBehavior : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new ScopedRepo("two_stage_behavior", TinyRepoOptions());
  }
  static void TearDownTestSuite() {
    delete repo_;
    repo_ = nullptr;
  }
  static ScopedRepo* repo_;
};

ScopedRepo* TwoStageBehavior::repo_ = nullptr;

TEST_F(TwoStageBehavior, MetadataQueryIsStage1Only) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.two_stage.stage1_only);
  EXPECT_EQ(r->stats.mount.mounts, 0u);
}

TEST_F(TwoStageBehavior, MixedQuerySplitsAndMountsOnlyFilesOfInterest) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->stats.two_stage.split);
  // 2 days x 1 channel of 1 station = 2 files of 8 total.
  EXPECT_EQ(r->stats.two_stage.files_of_interest, 2u);
  EXPECT_EQ(r->stats.mount.mounts, 2u);
}

TEST_F(TwoStageBehavior, EmptyFilesOfInterestMountsNothing) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NOPE'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.two_stage.files_of_interest, 0u);
  EXPECT_EQ(r->stats.mount.mounts, 0u);
  ASSERT_EQ(r->table->num_rows(), 1u);
  EXPECT_EQ(r->table->GetValue(0, 0).int64(), 0);
}

TEST_F(TwoStageBehavior, BreakpointCallbackSeesInformativeness) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  BreakpointInfo seen;
  int calls = 0;
  QueryOptions qopts;
  qopts.breakpoint = [&](const BreakpointInfo& info) {
    seen = info;
    ++calls;
    return BreakpointDecision::kContinue;
  };
  auto r = (*db)->Query(
      "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK'",
      qopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.files_of_interest.size(), 4u);  // 2 channels x 2 days
  EXPECT_GT(seen.bytes_to_mount, 0u);
  EXPECT_GT(seen.est_rows_to_ingest, 0u);
  EXPECT_GT(seen.est_stage2_seconds, 0.0);
}

TEST_F(TwoStageBehavior, AbortAtBreakpointStopsBeforeIngestion) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  QueryOptions qopts;
  qopts.breakpoint = [](const BreakpointInfo&) {
    return BreakpointDecision::kAbort;
  };
  auto r = (*db)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",
                        qopts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted());
  EXPECT_EQ((*db)->Query("SELECT COUNT(*) FROM F")->stats.mount.mounts, 0u);
}

TEST_F(TwoStageBehavior, MultiStageIngestionBatchesAndReportsProgress) {
  DatabaseOptions opts;
  opts.two_stage.mount_batch_size = 2;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  std::vector<size_t> batches;
  QueryOptions qopts;
  qopts.breakpoint = [&](const BreakpointInfo& info) {
    batches.push_back(info.batch_index);
    return BreakpointDecision::kContinue;
  };
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",  // all 8 files
      qopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Callback at the stage boundary (batch 0) plus after each of 4 batches.
  ASSERT_EQ(batches.size(), 5u);
  EXPECT_EQ(batches.front(), 0u);
  EXPECT_EQ(batches.back(), 4u);
  // Result is still correct.
  auto plain = Database::Open(repo_->root(), {});
  ASSERT_TRUE(plain.ok());
  auto expected = (*plain)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->table->GetValue(0, 0).int64(),
            expected->table->GetValue(0, 0).int64());
}

TEST_F(TwoStageBehavior, MultiStageAbortMidIngestion) {
  DatabaseOptions opts;
  opts.two_stage.mount_batch_size = 2;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  QueryOptions qopts;
  qopts.breakpoint = [&](const BreakpointInfo& info) {
    return info.batch_index >= 2 ? BreakpointDecision::kAbort
                                 : BreakpointDecision::kContinue;
  };
  auto r = (*db)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",
                        qopts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted());
}

TEST_F(TwoStageBehavior, StrategyBDistributesJoinOverUnion) {
  DatabaseOptions opts;
  opts.two_stage.distribute_join_over_union = true;
  auto strategy_b = Database::Open(repo_->root(), opts);
  auto strategy_a = Database::Open(repo_->root(), {});
  ASSERT_TRUE(strategy_a.ok());
  ASSERT_TRUE(strategy_b.ok());
  const char* sql =
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK'";
  auto a = (*strategy_a)->Query(sql);
  auto b = (*strategy_b)->Query(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->table->GetValue(0, 0).int64(), b->table->GetValue(0, 0).int64());
}

TEST_F(TwoStageBehavior, NoPushSelectionVariantStillCorrect) {
  DatabaseOptions opts;
  opts.two_stage.push_selection_into_union = false;
  auto db = Database::Open(repo_->root(), opts);
  auto reference = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(reference.ok());
  const char* sql =
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND D.sample_value > 0";
  auto a = (*db)->Query(sql);
  auto b = (*reference)->Query(sql);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->table->GetValue(0, 0).int64(), b->table->GetValue(0, 0).int64());
}

TEST_F(TwoStageBehavior, CachePolicyAllUsesCacheScansOnRepeat) {
  DatabaseOptions opts;
  opts.cache.policy = CachePolicy::kAll;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  const char* sql =
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'";
  auto first = (*db)->Query(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.mount.mounts, 2u);
  auto second = (*db)->Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.mount.mounts, 0u) << "repeat must hit the cache";
  EXPECT_EQ(second->stats.two_stage.files_planned_cache, 2u);
  EXPECT_EQ(first->table->GetValue(0, 0).int64(),
            second->table->GetValue(0, 0).int64());
}

TEST_F(TwoStageBehavior, DefaultPolicyRemountsEveryQuery) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  const char* sql =
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'";
  ASSERT_TRUE((*db)->Query(sql).ok());
  auto again = (*db)->Query(sql);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.mount.mounts, 2u)
      << "the paper's preliminary design discards mounted data";
}

TEST_F(TwoStageBehavior, DerivedPruningSkipsImpossibleFiles) {
  DatabaseOptions opts;
  opts.collect_derived_metadata = true;
  opts.two_stage.pruning.file_level = true;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  // Pass 1: mount everything, collecting derived metadata.
  auto warm = (*db)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->stats.mount.mounts, 8u);
  // Pass 2: an impossible value range — derived stats prune every file.
  auto pruned = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE D.sample_value > 99999999");
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned->stats.mount.mounts, 0u);
  EXPECT_EQ(pruned->stats.two_stage.files_pruned, 8u);
  EXPECT_EQ(pruned->table->GetValue(0, 0).int64(), 0);
}

TEST_F(TwoStageBehavior, DerivedMetadataTableIsQueryable) {
  DatabaseOptions opts;
  opts.collect_derived_metadata = true;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
                          "WHERE F.station = 'ISK' AND F.channel = 'BHE'")
                  .ok());
  auto dm = (*db)->Query(
      "SELECT COUNT(*) AS n, MIN(DM.min_value) AS lo FROM DM");
  ASSERT_TRUE(dm.ok()) << dm.status().ToString();
  EXPECT_EQ(dm->table->GetValue(0, 0).int64(), 6);  // 2 files x 3 records
  EXPECT_TRUE(dm->stats.two_stage.stage1_only) << "DM is metadata";
}

/// Direct property: the union of all mounts equals the eagerly loaded D
/// table row-for-row (order-insensitive) — the mount path and the bulk
/// loader must agree exactly on extraction and transformation.
TEST_F(TwoStageBehavior, MountedUnionEqualsEagerD) {
  auto ali = Database::Open(repo_->root(), {});
  DatabaseOptions eopts;
  eopts.mode = IngestionMode::kEager;
  eopts.build_indexes = false;
  auto ei = Database::Open(repo_->root(), eopts);
  ASSERT_TRUE(ali.ok());
  ASSERT_TRUE(ei.ok());
  auto mounted = (*ali)->Query("SELECT * FROM D");
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  auto loaded = (*ei)->Query("SELECT * FROM D");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(mounted->table->num_rows(), loaded->table->num_rows());
  EXPECT_EQ(::dex::testing::CanonicalRows(*mounted->table),
            ::dex::testing::CanonicalRows(*loaded->table));
}

}  // namespace
}  // namespace dex
