// Zone-map pruning property tests.
//
// The load-bearing invariant: zone maps are a performance hint, never a
// correctness dependency. For every (predicate, corpus) pair, a query with
// pruning fully on must return byte-identical rows AND charge identical
// simulated I/O as the same query with pruning fully off — at any worker
// count and shard count. Record/frame pruning saves *decode CPU* only; the
// mount still charges the whole-file simulated read, so the sim-I/O ledger
// cannot legally move.
//
// The fuzz half: stale or corrupt *persisted* zone maps must degrade to a
// full decode (discarded wholesale on checksum/format violations, dropped
// per-file on identity change) — never wrong rows.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "io/file_io.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::CanonicalRows;
using ::dex::testing::ScopedRepo;
using ::dex::testing::SmallRepoOptions;

// Predicates spanning the selectivity spectrum of the synthetic waveforms
// (noise is roughly +-60, seismic events reach thousands): everything,
// event-only, nothing, and a two-sided band.
const char* kPredicates[] = {
    "SELECT COUNT(*), MIN(D.sample_value), MAX(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri WHERE D.sample_value > 500",
    "SELECT COUNT(*), AVG(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri WHERE D.sample_value > 1000000",
    "SELECT COUNT(*), AVG(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_value > -40 AND D.sample_value < 40",
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_value > -1000000",
};

PruningOptions PruningOff() {
  PruningOptions off;
  off.file_level = false;
  off.record_level = false;
  off.frame_level = false;
  off.use_simd_kernels = false;
  return off;
}

struct RunOutcome {
  std::vector<std::string> rows;
  uint64_t sim_io_nanos = 0;
  uint64_t records_skipped = 0;
  uint64_t frames_skipped = 0;
};

// Opens the repo fresh and runs `sql` twice (the first run harvests zone
// maps as a decode side effect; the second is the one that can prune).
// Returns the second run's outcome. With `prune` false the database is
// opened with zone maps disabled entirely.
RunOutcome RunTwice(const std::string& root, const std::string& sql,
                    size_t workers, int shards, bool prune) {
  DatabaseOptions options;
  options.two_stage.num_threads = workers;
  if (shards > 1) options.shard.num_shards = shards;
  if (!prune) {
    options.collect_zone_maps = false;
    options.two_stage.pruning = PruningOff();
  }
  auto db = Database::Open(root, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  RunOutcome out;
  if (!db.ok()) return out;
  for (int pass = 0; pass < 2; ++pass) {
    auto result = (*db)->Query(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    if (!result.ok()) return out;
    out.rows = CanonicalRows(*result->table);
    out.sim_io_nanos = result->stats.sim_io_nanos;
    out.records_skipped = result->stats.records_skipped_zonemap;
    out.frames_skipped = result->stats.frames_skipped_zonemap;
  }
  return out;
}

TEST(ZoneMapProperty, PrunedEqualsUnprunedAtEveryWorkerAndShardCount) {
  for (uint64_t seed : {7u, 1234u}) {
    mseed::GeneratorOptions gen = SmallRepoOptions();
    gen.seed = seed;
    gen.event_probability = 0.3;  // ensure some records carry events
    ScopedRepo repo("zonemap_prop_" + std::to_string(seed), gen);
    for (const char* sql : kPredicates) {
      // The unpruned ledger is worker/shard-dependent (makespan vs serial
      // sum), so compare like against like at every configuration.
      for (size_t workers : {size_t{1}, size_t{4}, size_t{8}}) {
        for (int shards : {1, 4}) {
          const RunOutcome off =
              RunTwice(repo.root(), sql, workers, shards, /*prune=*/false);
          const RunOutcome on =
              RunTwice(repo.root(), sql, workers, shards, /*prune=*/true);
          const std::string ctx = std::string(sql) +
                                  " workers=" + std::to_string(workers) +
                                  " shards=" + std::to_string(shards) +
                                  " seed=" + std::to_string(seed);
          EXPECT_EQ(off.rows, on.rows) << ctx;
          EXPECT_EQ(off.sim_io_nanos, on.sim_io_nanos)
              << "record/frame pruning saves CPU only; the sim-I/O ledger "
                 "must not move: " << ctx;
          EXPECT_EQ(off.records_skipped, 0u) << ctx;
        }
      }
    }
  }
}

TEST(ZoneMapProperty, SelectivePredicateActuallyPrunes) {
  ScopedRepo repo("zonemap_prunes", SmallRepoOptions());
  // Impossible predicate: every record's zone excludes it, so the second
  // run must skip every known record.
  const RunOutcome on = RunTwice(repo.root(), kPredicates[1], 1, 1, true);
  EXPECT_GT(on.records_skipped, 0u)
      << "second run over harvested zone maps should skip records";
  for (const std::string& row : on.rows) {
    EXPECT_EQ(row.substr(0, 2), "0|") << "impossible predicate matched rows";
  }
}

class ZoneMapPersistenceTest : public ::testing::Test {
 protected:
  ZoneMapPersistenceTest()
      : repo_("zonemap_persist", SmallRepoOptions()),
        map_path_(repo_.root() + "/.zonemaps") {}

  DatabaseOptions WithPath() const {
    DatabaseOptions options;
    options.zone_map_path = map_path_;
    return options;
  }

  // Ground truth: fresh open with zone maps disabled entirely.
  std::vector<std::string> Baseline(const std::string& sql) {
    DatabaseOptions options;
    options.collect_zone_maps = false;
    options.two_stage.pruning = PruningOff();
    auto db = Database::Open(repo_.root(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto result = (*db)->Query(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? CanonicalRows(*result->table)
                       : std::vector<std::string>{};
  }

  // Populates and persists zone maps by opening, querying, and closing.
  void Persist(const std::string& sql) {
    auto db = Database::Open(repo_.root(), WithPath());
    DEX_ASSERT_OK(db);
    DEX_ASSERT_OK((*db)->Query(sql));
  }

  ScopedRepo repo_;
  std::string map_path_;
};

TEST_F(ZoneMapPersistenceTest, PersistedZoneMapsPruneOnColdOpen) {
  const std::string sql = kPredicates[0];
  const auto baseline = Baseline(sql);
  Persist(sql);

  auto db = Database::Open(repo_.root(), WithPath());
  DEX_ASSERT_OK(db);
  EXPECT_GT((*db)->zone_maps()->GetStats().persisted_loads, 0u)
      << "reopen should restore the persisted zones";
  auto result = (*db)->Query(sql);
  DEX_ASSERT_OK(result);
  EXPECT_EQ(CanonicalRows(*result->table), baseline);
  EXPECT_GT(result->stats.records_skipped_zonemap +
                result->stats.frames_skipped_zonemap,
            0u)
      << "the very first query after reload should prune from cold zones";
}

TEST_F(ZoneMapPersistenceTest, CorruptPersistedZoneMapsNeverYieldWrongRows) {
  const std::string sql = kPredicates[0];
  const auto baseline = Baseline(sql);
  Persist(sql);

  std::string image;
  DEX_ASSERT_STATUS_OK(ReadFileToString(map_path_, &image));
  ASSERT_GT(image.size(), 16u);

  // Fuzz sweep: damage the magic, the body at several depths, the checksum
  // footer; truncate at several points; append trailing garbage. Every
  // mutant must be discarded wholesale (checksum/format violation) and the
  // query must fall back to full decode with identical rows.
  std::vector<std::string> mutants;
  for (size_t off : {size_t{0}, size_t{4}, image.size() / 3, image.size() / 2,
                     image.size() - 1}) {
    std::string m = image;
    m[off] = static_cast<char>(m[off] ^ 0x5a);
    mutants.push_back(std::move(m));
  }
  mutants.push_back(image.substr(0, 3));
  mutants.push_back(image.substr(0, image.size() / 2));
  mutants.push_back(image + "trailing-garbage");
  mutants.push_back("");

  for (size_t i = 0; i < mutants.size(); ++i) {
    DEX_ASSERT_STATUS_OK(WriteStringToFile(map_path_, mutants[i]));
    auto db = Database::Open(repo_.root(), WithPath());
    ASSERT_TRUE(db.ok()) << "corrupt zone maps must never block Open: mutant "
                         << i << ": " << db.status().ToString();
    EXPECT_GT((*db)->zone_maps()->GetStats().corrupt_discarded, 0u)
        << "mutant " << i << " should be detected and discarded";
    EXPECT_EQ((*db)->zone_maps()->GetStats().persisted_loads, 0u)
        << "mutant " << i << " must not restore any file";
    auto result = (*db)->Query(sql);
    DEX_ASSERT_OK(result);
    EXPECT_EQ(CanonicalRows(*result->table), baseline) << "mutant " << i;
    // Close without re-persisting over the next mutant's input.
  }
}

TEST_F(ZoneMapPersistenceTest, StaleZoneMapsDroppedWhenFilesChange) {
  const std::string sql = kPredicates[0];
  Persist(sql);

  // Rewrite the repository in place with a different seed: same file names,
  // different waveforms. The persisted zones now describe dead content.
  mseed::GeneratorOptions gen = SmallRepoOptions();
  gen.seed = 9999;
  gen.event_probability = 0.4;
  DEX_ASSERT_OK(mseed::GenerateRepository(repo_.root(), gen));
  const auto baseline = Baseline(sql);

  auto db = Database::Open(repo_.root(), WithPath());
  DEX_ASSERT_OK(db);
  EXPECT_GT((*db)->zone_maps()->GetStats().stale_dropped, 0u)
      << "identity change (size/mtime) should drop the stale zones";
  for (int pass = 0; pass < 2; ++pass) {
    auto result = (*db)->Query(sql);
    DEX_ASSERT_OK(result);
    EXPECT_EQ(CanonicalRows(*result->table), baseline) << "pass " << pass;
  }
}

TEST(ZoneMapOptions, PerQueryOverrideDisablesPruning) {
  ScopedRepo repo("zonemap_override", SmallRepoOptions());
  auto db = Database::Open(repo.root(), DatabaseOptions{});
  DEX_ASSERT_OK(db);
  const std::string sql = kPredicates[1];
  DEX_ASSERT_OK((*db)->Query(sql));  // harvest

  QueryOptions off;
  off.pruning = PruningOff();
  auto unpruned = (*db)->Query(sql, off);
  DEX_ASSERT_OK(unpruned);
  EXPECT_EQ(unpruned->stats.records_skipped_zonemap, 0u);
  EXPECT_EQ(unpruned->stats.frames_skipped_zonemap, 0u);

  auto pruned = (*db)->Query(sql);
  DEX_ASSERT_OK(pruned);
  EXPECT_GT(pruned->stats.records_skipped_zonemap, 0u);
  EXPECT_EQ(CanonicalRows(*pruned->table), CanonicalRows(*unpruned->table));
}

}  // namespace
}  // namespace dex
