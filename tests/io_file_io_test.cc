#include "io/file_io.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/dex_file_io_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }
  std::string dir_;
};

TEST_F(FileIoTest, WriteThenReadRoundtrip) {
  const std::string path = dir_ + "/sub/file.bin";
  const std::string payload = "hello\0world", expect = payload;
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, expect);
}

TEST_F(FileIoTest, WriteCreatesParentDirectories) {
  const std::string path = dir_ + "/a/b/c/file.txt";
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
}

TEST_F(FileIoTest, ReadMissingFileFails) {
  std::string out;
  EXPECT_TRUE(ReadFileToString(dir_ + "/nope", &out).IsIOError());
}

TEST_F(FileIoTest, ReadRange) {
  const std::string path = dir_ + "/range.bin";
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  std::string out;
  ASSERT_TRUE(ReadFileRange(path, 3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
}

TEST_F(FileIoTest, ReadRangePastEndFails) {
  const std::string path = dir_ + "/short.bin";
  ASSERT_TRUE(WriteStringToFile(path, "abc").ok());
  std::string out;
  EXPECT_FALSE(ReadFileRange(path, 2, 10, &out).ok());
}

TEST_F(FileIoTest, FileSizeAndMtime) {
  const std::string path = dir_ + "/sized.bin";
  ASSERT_TRUE(WriteStringToFile(path, std::string(1234, 'x')).ok());
  ASSERT_TRUE(FileSize(path).ok());
  EXPECT_EQ(*FileSize(path), 1234u);
  ASSERT_TRUE(FileMtimeMillis(path).ok());
  EXPECT_GT(*FileMtimeMillis(path), 0);
  EXPECT_FALSE(FileSize(dir_ + "/missing").ok());
}

TEST_F(FileIoTest, ListFilesFiltersAndSorts) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/b/2.mseed", "x").ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/a/1.mseed", "x").ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/a/ignore.txt", "x").ok());
  auto files = ListFiles(dir_, ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_EQ((*files)[0], dir_ + "/a/1.mseed");
  EXPECT_EQ((*files)[1], dir_ + "/b/2.mseed");
}

TEST_F(FileIoTest, ListFilesEmptyExtensionListsAll) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/x.bin", "x").ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/y.txt", "y").ok());
  auto files = ListFiles(dir_, "");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 2u);
}

TEST_F(FileIoTest, ListFilesMissingDirFails) {
  EXPECT_TRUE(ListFiles(dir_ + "/ghost", ".mseed").status().IsNotFound());
}

TEST_F(FileIoTest, OverwriteTruncates) {
  const std::string path = dir_ + "/trunc.bin";
  ASSERT_TRUE(WriteStringToFile(path, "long content here").ok());
  ASSERT_TRUE(WriteStringToFile(path, "hi").ok());
  std::string out;
  ASSERT_TRUE(ReadFileToString(path, &out).ok());
  EXPECT_EQ(out, "hi");
}

TEST_F(FileIoTest, EmptyFileRoundtrip) {
  const std::string path = dir_ + "/empty.bin";
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  std::string out = "sentinel";
  ASSERT_TRUE(ReadFileToString(path, &out).ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace dex
