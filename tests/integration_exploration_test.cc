// Integration tests: full exploration sessions through the public API,
// including failure injection (files vanishing or corrupted between stage 1
// and stage 2) and repository change detection.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <ctime>

#include "core/database.h"
#include "mseed/writer.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

TEST(ExplorationSession, BrowseThenZoomInThenZoomOut) {
  ScopedRepo repo("session_zoom", TinyRepoOptions());
  DatabaseOptions opts;
  opts.cache.policy = CachePolicy::kLru;
  opts.cache.capacity_bytes = 64ull << 20;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok());

  // 1. Browse: which stations exist, how much data per station? (stage 1)
  auto stations = (*db)->Query(
      "SELECT F.station, COUNT(*) AS files FROM F GROUP BY F.station "
      "ORDER BY F.station");
  ASSERT_TRUE(stations.ok());
  EXPECT_TRUE(stations->stats.two_stage.stage1_only);
  EXPECT_EQ(stations->table->num_rows(), 2u);

  // 2. Zoom in: one channel of one station.
  auto zoom_in = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'");
  ASSERT_TRUE(zoom_in.ok());
  EXPECT_EQ(zoom_in->stats.mount.mounts, 2u);

  // 3. Zoom out to the whole station: previous files come from cache.
  auto zoom_out = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK'");
  ASSERT_TRUE(zoom_out.ok());
  EXPECT_EQ(zoom_out->stats.two_stage.files_planned_cache, 2u);
  EXPECT_EQ(zoom_out->stats.mount.mounts, 2u);  // only the other channel

  // 4. Repeat: everything cached now.
  auto repeat = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK'");
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->stats.mount.mounts, 0u);
  EXPECT_EQ(repeat->table->GetValue(0, 0).int64(),
            zoom_out->table->GetValue(0, 0).int64());
}

TEST(ExplorationSession, FileVanishingBetweenStagesFailsTheQuery) {
  ScopedRepo repo("session_vanish", TinyRepoOptions());
  DatabaseOptions strict;
  strict.two_stage.on_mount_error = OnMountError::kFail;
  auto db = Database::Open(repo.root(), strict);
  ASSERT_TRUE(db.ok());
  // Delete one ISK/BHE file after open (stage 1 metadata still lists it).
  const auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  std::string victim;
  for (const auto& f : *files) {
    if (f.find("ISK") != std::string::npos &&
        f.find("BHE") != std::string::npos) {
      victim = f;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(RemoveDirRecursive(victim).ok());
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
  // Queries not touching the vanished file still work.
  EXPECT_TRUE((*db)
                  ->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
                          "WHERE F.station = 'ANK'")
                  .ok());
}

TEST(ExplorationSession, CorruptedFileSurfacesAsCorruption) {
  ScopedRepo repo("session_corrupt", TinyRepoOptions());
  DatabaseOptions strict;
  strict.two_stage.on_mount_error = OnMountError::kFail;
  auto db = Database::Open(repo.root(), strict);
  ASSERT_TRUE(db.ok());
  const auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString((*files)[0], &image).ok());
  image[80] = static_cast<char>(image[80] ^ 0x55);  // flip payload bits
  ASSERT_TRUE(WriteStringToFile((*files)[0], image).ok());
  auto r = (*db)->Query("SELECT COUNT(*) FROM D");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(ExplorationSession, FileUpdateInvalidatesCachedData) {
  ScopedRepo repo("session_update", TinyRepoOptions());
  DatabaseOptions opts;
  opts.cache.policy = CachePolicy::kAll;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok());
  const char* sql =
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE'";
  auto first = (*db)->Query(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.mount.mounts, 2u);

  // Overwrite one of the files with new content (different mtime + data).
  const auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  std::string victim;
  for (const auto& f : *files) {
    if (f.find("ISK") != std::string::npos && f.find("BHE") != std::string::npos) {
      victim = f;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = 1262304000000LL;  // 2010-01-01
  rec.sample_rate_hz = 0.01;
  rec.samples = std::vector<int32_t>(100, 5);
  // Ensure the mtime actually changes even on coarse filesystems.
  ASSERT_TRUE(mseed::WriteFile(victim, {rec}).ok());
  struct timespec times[2] = {{0, 0}, {0, 0}};
  times[0].tv_sec = times[1].tv_sec = ::time(nullptr) + 10;
  ASSERT_EQ(::utimensat(AT_FDCWD, victim.c_str(), times, 0), 0);

  auto second = (*db)->Query(sql);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // The updated file must be re-mounted, the untouched one served by cache.
  EXPECT_EQ(second->stats.mount.mounts, 1u);
  EXPECT_EQ(second->stats.two_stage.files_planned_cache, 1u);
  EXPECT_GT((*db)->cache()->stats().invalidations, 0u);
}

TEST(ExplorationSession, EiAndAliAgreeAcrossAWholeSession) {
  ScopedRepo repo("session_agree", TinyRepoOptions());
  auto dual = dex::testing::OpenDual(repo.root());
  ASSERT_NE(dual.ali, nullptr);
  ASSERT_NE(dual.ei, nullptr);
  const char* session[] = {
      "SELECT F.station, F.channel, COUNT(*) AS n FROM F "
      "GROUP BY F.station, F.channel ORDER BY F.station, F.channel",
      "SELECT COUNT(*) FROM R WHERE R.start_time >= '2010-01-02T00:00:00.000'",
      "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK'",
      "SELECT F.channel, MAX(D.sample_value) AS peak FROM F "
      "JOIN D ON F.uri = D.uri GROUP BY F.channel ORDER BY F.channel",
      "SELECT COUNT(*) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK' AND R.record_id = 2 "
      "AND D.sample_value > 100",
  };
  for (const char* sql : session) {
    dex::testing::ExpectSameResults(dual.ali.get(), dual.ei.get(), sql);
  }
}

TEST(ExplorationSession, LazyOpenIsFasterThanEagerOpen) {
  ScopedRepo repo("session_open_cost", TinyRepoOptions());
  auto lazy = Database::Open(repo.root(), {});
  DatabaseOptions eopts;
  eopts.mode = IngestionMode::kEager;
  auto eager = Database::Open(repo.root(), eopts);
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(eager.ok());
  // The headline claim: data-to-insight time shrinks by orders of magnitude.
  // On the tiny test repo we only assert the direction, benches assert scale.
  EXPECT_LT((*lazy)->open_stats().TotalSeconds(),
            (*eager)->open_stats().TotalSeconds());
}

}  // namespace
}  // namespace dex
