// Fault-tolerant lazy ingestion: injected I/O faults, retry/backoff, file
// quarantine, and the QUARANTINE metadata table.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "core/seismic_schema.h"
#include "io/file_io.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::CanonicalRows;
using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

/// 100 files: 5 stations x 5 channels x 4 days.
mseed::GeneratorOptions HundredFileRepo() {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 5;
  gen.channels_per_station = 5;
  gen.num_days = 4;
  return gen;
}

const char* kCountAll = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";
const char* kPerStation =
    "SELECT F.station, AVG(D.sample_value), COUNT(*) "
    "FROM F JOIN D ON F.uri = D.uri "
    "GROUP BY F.station ORDER BY F.station";

TEST(FaultTolerance, TransientFaultsAreInvisibleUnderRetry) {
  ScopedRepo repo("ft_transient", HundredFileRepo());

  auto clean = Database::Open(repo.root(), {});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  DatabaseOptions faulty_opts;
  faulty_opts.disk.faults.seed = 42;
  faulty_opts.disk.faults.transient_error_rate = 0.01;  // 1% of disk reads
  auto faulty = Database::Open(repo.root(), faulty_opts);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ((*faulty)->registry()->size(), 100u);

  for (const char* sql : {kCountAll, kPerStation}) {
    auto c = (*clean)->Query(sql);
    auto f = (*faulty)->Query(sql);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    EXPECT_EQ(CanonicalRows(*c->table), CanonicalRows(*f->table)) << sql;
    EXPECT_EQ(f->stats.files_failed, 0u) << sql;
    EXPECT_EQ(f->stats.files_skipped, 0u) << sql;
  }
  // Nothing was quarantined: transient faults are absorbed, not punished.
  auto q = (*faulty)->Query("SELECT COUNT(*) FROM QUARANTINE");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->table->GetValue(0, 0).int64(), 0);
}

TEST(FaultTolerance, RetriesAreCountedAndChargedAsSimulatedTime) {
  ScopedRepo repo("ft_retry", HundredFileRepo());
  DatabaseOptions opts;
  opts.disk.faults.seed = 7;
  opts.disk.faults.transient_error_rate = 0.10;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // The stage-1 scan retried its header reads to success and left the files'
  // pages resident; flush so the mounts face the faulty medium cold.
  (*db)->FlushBuffers();

  auto r = (*db)->Query(kCountAll);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 100 cold file reads at 10% failure: some retries must have happened,
  // and every one of them succeeded within the budget.
  EXPECT_GT(r->stats.read_retries, 0u);
  EXPECT_EQ(r->stats.files_failed, 0u);
  EXPECT_EQ(r->stats.mount.mounts, 100u);

  // Backoff is simulated wall time: with the default 2ms base, each retry
  // charges at least 2ms to the simulated medium.
  EXPECT_GE(r->stats.sim_io_nanos, r->stats.read_retries * 2'000'000ull);
}

TEST(FaultTolerance, LatencySpikesChargeSimulatedTime) {
  ScopedRepo repo("ft_latency");
  DatabaseOptions opts;
  opts.disk.faults.seed = 3;
  opts.disk.faults.latency_spike_rate = 1.0;  // every disk read spikes
  opts.disk.faults.latency_spike_millis = 5.0;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto r = (*db)->Query(kCountAll);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stats = (*db)->disk()->fault_injector()->stats();
  EXPECT_GT(stats.latency_spikes, 0u);
  EXPECT_GT(stats.spike_nanos, 0u);
  // The injected delay is part of the reported query I/O (spikes during
  // Open() are charged to OpenStats instead).
  EXPECT_GT((*db)->disk()->stats().sim_nanos, stats.spike_nanos);
}

TEST(FaultTolerance, PermanentFailuresQuarantineAndDegrade) {
  ScopedRepo repo("ft_permanent", HundredFileRepo());
  auto opened = Database::Open(repo.root(), {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Database* db = opened->get();

  auto baseline = db->Query(kCountAll);
  ASSERT_TRUE(baseline.ok());
  const int64_t total = baseline->table->GetValue(0, 0).int64();

  // Three files go permanently bad (disk sectors died under them).
  std::vector<std::string> uris = db->registry()->AllUris();
  ASSERT_GE(uris.size(), 3u);
  std::vector<std::string> victims(uris.begin(), uris.begin() + 3);
  int64_t lost_rows = 0;
  for (const std::string& uri : victims) {
    auto q = db->Query(
        "SELECT COUNT(*) FROM D WHERE D.uri = '" + uri + "'");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    lost_rows += q->table->GetValue(0, 0).int64();
  }
  // Fail all three only after the baseline counts, so no victim gets
  // quarantined by a baseline query touching the others.
  for (const std::string& uri : victims) {
    auto entry = db->registry()->Get(uri);
    ASSERT_TRUE(entry.ok());
    db->disk()->fault_injector()->FailObject(entry->object);
  }
  ASSERT_GT(lost_rows, 0);
  db->FlushBuffers();  // force the next mounts back onto the (bad) medium

  // The query degrades gracefully: partial result, 3 failures, warnings.
  auto degraded = db->Query(kCountAll);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->stats.files_failed, 3u);
  EXPECT_EQ(degraded->table->GetValue(0, 0).int64(), total - lost_rows);
  EXPECT_GE(degraded->stats.warnings.size(), 3u);

  // Exactly the three victims are queryable in QUARANTINE.
  auto qcount = db->Query("SELECT COUNT(*) FROM QUARANTINE");
  ASSERT_TRUE(qcount.ok()) << qcount.status().ToString();
  EXPECT_EQ(qcount->table->GetValue(0, 0).int64(), 3);
  auto qrows = db->Query("SELECT QUARANTINE.uri FROM QUARANTINE");
  ASSERT_TRUE(qrows.ok()) << qrows.status().ToString();
  std::vector<std::string> quarantined;
  for (size_t i = 0; i < qrows->table->num_rows(); ++i) {
    quarantined.push_back(qrows->table->GetValue(i, 0).str());
  }
  std::sort(quarantined.begin(), quarantined.end());
  std::vector<std::string> expected = victims;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(quarantined, expected);

  // Quarantined files are never re-selected as files of interest: the rerun
  // mounts nothing bad, wastes no retries on it, and reports no failure.
  auto rerun = db->Query(kCountAll);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->stats.files_failed, 0u);
  EXPECT_EQ(rerun->stats.read_retries, 0u);
  EXPECT_EQ(rerun->stats.two_stage.files_quarantined, 3u);
  EXPECT_EQ(rerun->table->GetValue(0, 0).int64(), total - lost_rows);
}

TEST(FaultTolerance, KFailPropagatesPermanentFault) {
  ScopedRepo repo("ft_kfail");
  DatabaseOptions strict;
  strict.two_stage.on_mount_error = OnMountError::kFail;
  auto db = Database::Open(repo.root(), strict);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  const std::vector<std::string> uris = (*db)->registry()->AllUris();
  ASSERT_FALSE(uris.empty());
  auto entry = (*db)->registry()->Get(uris[0]);
  ASSERT_TRUE(entry.ok());
  (*db)->disk()->fault_injector()->FailObject(entry->object);
  (*db)->FlushBuffers();

  auto r = (*db)->Query(kCountAll);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
}

TEST(FaultTolerance, HealedObjectLeavesQuarantineOnUpdate) {
  ScopedRepo repo("ft_heal");
  auto opened = Database::Open(repo.root(), {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Database* db = opened->get();

  const std::vector<std::string> uris = db->registry()->AllUris();
  auto entry = db->registry()->Get(uris[0]);
  ASSERT_TRUE(entry.ok());
  db->disk()->fault_injector()->FailObject(entry->object);
  db->FlushBuffers();
  ASSERT_TRUE(db->Query(kCountAll).ok());
  EXPECT_TRUE(db->registry()->IsQuarantined(uris[0]));

  // The medium recovers and the file is touched (fresh mtime): Refresh's
  // Update path rehabilitates it.
  db->disk()->fault_injector()->HealObject(entry->object);
  std::string image;
  ASSERT_TRUE(ReadFileToString(uris[0], &image).ok());
  ASSERT_TRUE(WriteStringToFile(uris[0], image).ok());
  ASSERT_TRUE(
      db->registry()->Update(uris[0], image.size(), entry->mtime_ms + 1).ok());
  EXPECT_FALSE(db->registry()->IsQuarantined(uris[0]));

  auto after = db->Query("SELECT COUNT(*) FROM QUARANTINE");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->table->GetValue(0, 0).int64(), 0);
}

TEST(FaultTolerance, SkipFilePolicyDropsCorruptFileWithoutQuarantine) {
  ScopedRepo repo("ft_skipfile");
  DatabaseOptions opts;
  opts.two_stage.on_mount_error = OnMountError::kSkipFile;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  const std::vector<std::string> uris = (*db)->registry()->AllUris();
  std::string image;
  ASSERT_TRUE(ReadFileToString(uris[0], &image).ok());
  image[70] = static_cast<char>(image[70] ^ 0x7f);  // damage first payload
  ASSERT_TRUE(WriteStringToFile(uris[0], image).ok());

  auto r = (*db)->Query(kCountAll);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.files_skipped, 1u);
  EXPECT_EQ(r->stats.files_failed, 0u);
  ASSERT_FALSE(r->stats.warnings.empty());
  EXPECT_NE(r->stats.warnings[0].find(uris[0]), std::string::npos);

  // Corrupt-but-readable files are NOT quarantined: kSalvage could still
  // recover from them, and the operator may repair the bytes in place.
  auto q = (*db)->Query("SELECT COUNT(*) FROM QUARANTINE");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->table->GetValue(0, 0).int64(), 0);
}

TEST(FaultTolerance, SalvagePolicyRecoversRecordsPastCorruption) {
  ScopedRepo repo("ft_salvage");
  auto clean = Database::Open(repo.root(), {});
  ASSERT_TRUE(clean.ok());
  auto baseline = (*clean)->Query(kCountAll);
  ASSERT_TRUE(baseline.ok());
  const int64_t total = baseline->table->GetValue(0, 0).int64();

  // Damage the first record's payload of one file, then open fresh (the
  // default policy is kSalvage).
  const std::vector<std::string> uris = (*clean)->registry()->AllUris();
  std::string image;
  ASSERT_TRUE(ReadFileToString(uris[0], &image).ok());
  image[70] = static_cast<char>(image[70] ^ 0x7f);
  ASSERT_TRUE(WriteStringToFile(uris[0], image).ok());

  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto r = (*db)->Query(kCountAll);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.records_skipped, 1u);
  EXPECT_GT(r->stats.records_salvaged, 0u);
  EXPECT_EQ(r->stats.files_failed, 0u);
  EXPECT_EQ(r->stats.files_skipped, 0u);
  // Only the one corrupt record's samples are missing.
  EXPECT_LT(r->table->GetValue(0, 0).int64(), total);
  ASSERT_FALSE(r->stats.warnings.empty());
  EXPECT_NE(r->stats.warnings[0].find(uris[0]), std::string::npos);

  // Salvaged-with-losses files are never cached, and are not quarantined.
  auto q = (*db)->Query("SELECT COUNT(*) FROM QUARANTINE");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->table->GetValue(0, 0).int64(), 0);
}

TEST(FaultTolerance, InjectorIsDeterministicPerSeed) {
  ScopedRepo repo("ft_seed", HundredFileRepo());
  auto run = [&](uint64_t seed) {
    DatabaseOptions opts;
    opts.disk.faults.seed = seed;
    opts.disk.faults.transient_error_rate = 0.10;
    auto db = Database::Open(repo.root(), opts);
    EXPECT_TRUE(db.ok());
    auto r = (*db)->Query(kCountAll);
    EXPECT_TRUE(r.ok());
    return (*db)->disk()->fault_injector()->stats().transient_faults;
  };
  const uint64_t a = run(99);
  EXPECT_EQ(a, run(99)) << "same seed, same fault schedule";
  EXPECT_NE(a, run(100)) << "different seed, different schedule";
}

}  // namespace
}  // namespace dex
