// The stage-2 ingestion substrate: worker pool + task groups.

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task_group.h"
#include "obs/metrics.h"

namespace dex {
namespace {

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, HigherPriorityClassesArePickedFirst) {
  ThreadPool pool(1);
  // Park the single worker so everything below queues up behind it.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.Submit([gate] { gate.wait(); });

  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  };
  std::vector<std::future<void>> fs;
  // Enqueued background-first; the worker must still drain interactive
  // first, then normal, then background.
  fs.push_back(pool.Submit([&] { record(0); }, ThreadPool::kPriorityBackground));
  fs.push_back(pool.Submit([&] { record(1); }, ThreadPool::kPriorityNormal));
  fs.push_back(pool.Submit([&] { record(2); }, ThreadPool::kPriorityInteractive));
  release.set_value();
  for (auto& f : fs) f.get();
  blocker.get();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(ThreadPool, BackgroundWorkIsNotStarvedByInteractiveFlood) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.Submit([gate] { gate.wait(); });

  // One background task buried under a flood of interactive ones. The
  // every-4th-pick rule must schedule it before the flood fully drains.
  std::atomic<int> interactive_done{0};
  std::atomic<int> interactive_done_before_background{-1};
  std::vector<std::future<void>> fs;
  fs.push_back(pool.Submit(
      [&] { interactive_done_before_background = interactive_done.load(); },
      ThreadPool::kPriorityBackground));
  constexpr int kFlood = 64;
  for (int i = 0; i < kFlood; ++i) {
    fs.push_back(pool.Submit([&] { ++interactive_done; },
                             ThreadPool::kPriorityInteractive));
  }
  release.set_value();
  for (auto& f : fs) f.get();
  blocker.get();
  EXPECT_GE(interactive_done_before_background.load(), 0);
  EXPECT_LT(interactive_done_before_background.load(), kFlood);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task and keeps serving.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ShutdownDrainsQueuedWorkAndIsIdempotent) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&ran] { ++ran; }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 50);
  for (auto& f : futures) f.get();  // all futures are complete
  pool.Shutdown();                  // second call is a no-op
}

TEST(ThreadPool, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  auto f = pool.Submit([&ran] { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorJoinsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      (void)pool.Submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool drains + joins
  EXPECT_EQ(ran.load(), 30);
}

TEST(TaskGroup, AllTasksSucceed) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    group.Spawn([&ran] {
      ++ran;
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(group.tasks_spawned(), 32u);
  EXPECT_EQ(group.tasks_skipped(), 0u);
  EXPECT_FALSE(group.cancelled());
}

TEST(TaskGroup, ReportsLowestIndexError) {
  // Inline mode (null pool) makes every task run, deterministically: the
  // aggregated status must be the lowest spawn index that failed, not the
  // last or the first to *finish*.
  TaskGroup group(nullptr);
  group.Spawn([] { return Status::OK(); });
  group.Spawn([] { return Status::InvalidArgument("first failure"); });
  group.Spawn([] { return Status::IOError("second failure"); });
  Status s = group.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("first failure"), std::string::npos);
}

TEST(TaskGroup, NullPoolRunsInlineDuringSpawn) {
  TaskGroup group(nullptr);
  int ran = 0;
  group.Spawn([&ran] {
    ++ran;
    return Status::OK();
  });
  EXPECT_EQ(ran, 1) << "inline mode executes during Spawn, before Wait";
  EXPECT_TRUE(group.Wait().ok());
}

TEST(TaskGroup, FirstFailureCancelsUnstartedTasks) {
  // Inline mode: the failure cancels the group synchronously, so every
  // later Spawn is skipped — exactly 1 executed, 9 skipped.
  TaskGroup group(nullptr);
  int ran = 0;
  group.Spawn([&ran] {
    ++ran;
    return Status::IOError("disk gone");
  });
  for (int i = 0; i < 9; ++i) {
    group.Spawn([&ran] {
      ++ran;
      return Status::OK();
    });
  }
  Status s = group.Wait();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(group.tasks_skipped(), 9u);
  EXPECT_TRUE(group.cancelled());
}

TEST(TaskGroup, ExternalCancelSkipsQueuedTasksAndReportsAborted) {
  ThreadPool pool(1);
  TaskGroup group(&pool);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  // The single worker parks on the gate; everything behind it queues.
  group.Spawn([&started, gate] {
    started.set_value();
    gate.wait();
    return Status::OK();
  });
  for (int i = 0; i < 8; ++i) {
    group.Spawn([] { return Status::OK(); });
  }
  // Only cancel once task 0 is running, so exactly the 8 queued tasks skip.
  started.get_future().wait();
  group.Cancel();
  release.set_value();
  Status s = group.Wait();
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_EQ(group.tasks_skipped(), 8u);
}

TEST(TaskGroup, SpawnAfterCancelIsSkipped) {
  TaskGroup group(nullptr);
  group.Cancel();
  int ran = 0;
  group.Spawn([&ran] {
    ++ran;
    return Status::OK();
  });
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(group.tasks_skipped(), 1u);
  EXPECT_TRUE(group.Wait().IsAborted());
}

TEST(TaskGroup, ExceptionRethrownFromWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Spawn([]() -> Status { throw std::runtime_error("task blew up"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The rethrow consumed the exception; a repeat Wait reports cleanly.
  EXPECT_TRUE(group.Wait().ok());
}

TEST(TaskGroup, ErrorWinsOverExternalCancel) {
  TaskGroup group(nullptr);
  group.Spawn([] { return Status::Corruption("bad bytes"); });
  group.Cancel();
  Status s = group.Wait();
  EXPECT_TRUE(s.IsCorruption()) << "real errors outrank the Aborted marker";
}

TEST(TaskGroup, ParallelFailuresStillReportLowestIndex) {
  // Under a real pool the finish order is nondeterministic, but the reported
  // error must be the lowest spawn index among those that failed. Park every
  // task on a gate until all have started, so cancellation cannot skip any
  // of them and all four failures are recorded.
  constexpr int kTasks = 4;
  ThreadPool pool(kTasks);
  TaskGroup group(&pool);
  std::atomic<int> started{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  for (int i = 0; i < kTasks; ++i) {
    group.Spawn([i, &started, gate] {
      ++started;
      gate.wait();
      return Status::IOError("index " + std::to_string(i));
    });
  }
  while (started.load() < kTasks) std::this_thread::yield();
  release.set_value();
  Status s = group.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("index 0"), std::string::npos) << s.ToString();
}

TEST(TaskGroup, CancelReasonIsReportedByWait) {
  // Reason-aware cancellation: a watchdog cancelling for a deadline must not
  // be indistinguishable from a user abort.
  TaskGroup group(nullptr);
  group.Cancel(Status::DeadlineExceeded("watchdog fired"));
  group.Spawn([] { return Status::OK(); });  // skipped
  Status s = group.Wait();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_NE(s.message().find("watchdog fired"), std::string::npos);
  EXPECT_EQ(group.tasks_skipped(), 1u);
}

TEST(TaskGroup, ReasonlessCancelStaysAborted) {
  TaskGroup group(nullptr);
  group.Cancel();
  EXPECT_TRUE(group.Wait().IsAborted());
}

TEST(TaskGroup, DestroyedWithoutWaitCountsDroppedErrors) {
  // Reset instead of delta-from-before: the counter must be attributable to
  // this test alone, not to whatever ran earlier in the process.
  obs::ScopedMetricsReset metrics_reset;
  auto& metrics = obs::MetricsRegistry::Global();
  {
    TaskGroup group(nullptr);
    group.Spawn([] { return Status::IOError("lost to the void"); });
    // No Wait(): the destructor must log the loss and count it.
  }
  EXPECT_EQ(metrics.counter("task_group.errors_dropped"), 1u);
  {
    // A waited group surfaced its error; nothing is dropped.
    TaskGroup group(nullptr);
    group.Spawn([] { return Status::IOError("surfaced"); });
    EXPECT_TRUE(group.Wait().IsIOError());
  }
  EXPECT_EQ(metrics.counter("task_group.errors_dropped"), 1u);
}

}  // namespace
}  // namespace dex
