#include "core/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

class DatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new ScopedRepo("database", TinyRepoOptions());
  }
  static void TearDownTestSuite() {
    delete repo_;
    repo_ = nullptr;
  }
  static ScopedRepo* repo_;
};

ScopedRepo* DatabaseTest::repo_ = nullptr;

TEST_F(DatabaseTest, OpenMissingRepoFails) {
  EXPECT_FALSE(Database::Open("/tmp/definitely_not_a_repo_xyz", {}).ok());
}

TEST_F(DatabaseTest, LazyOpenLoadsOnlyMetadata) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  const OpenStats& s = (*db)->open_stats();
  EXPECT_EQ(s.num_files, 8u);
  EXPECT_EQ(s.num_records, 8u * 3u);
  EXPECT_GT(s.metadata_bytes, 0u);
  EXPECT_EQ(s.db_bytes, 0u) << "lazy open must not materialize D";
  EXPECT_EQ(s.num_data_rows, 0u);
  // D exists but is empty.
  auto d = (*db)->catalog()->GetTable("D");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->num_rows(), 0u);
}

TEST_F(DatabaseTest, EagerOpenLoadsEverythingAndBuildsIndexes) {
  DatabaseOptions opts;
  opts.mode = IngestionMode::kEager;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  const OpenStats& s = (*db)->open_stats();
  EXPECT_GT(s.num_data_rows, 0u);
  EXPECT_GT(s.db_bytes, s.metadata_bytes);
  EXPECT_GT(s.index_bytes, 0u);
  EXPECT_GT(s.load_nanos, 0u);
  EXPECT_GT(s.index_nanos, 0u);
  auto d = (*db)->catalog()->GetTable("D");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->num_rows(), s.num_data_rows);
}

TEST_F(DatabaseTest, EagerWithoutIndexes) {
  DatabaseOptions opts;
  opts.mode = IngestionMode::kEager;
  opts.build_indexes = false;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->open_stats().index_bytes, 0u);
}

TEST_F(DatabaseTest, LazyOpenIsMuchSmallerThanEager) {
  auto lazy = Database::Open(repo_->root(), {});
  DatabaseOptions eopts;
  eopts.mode = IngestionMode::kEager;
  auto eager = Database::Open(repo_->root(), eopts);
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(eager.ok());
  // The essence of Table 1: metadata is orders of magnitude smaller.
  EXPECT_LT((*lazy)->open_stats().metadata_bytes * 10,
            (*eager)->open_stats().db_bytes);
}

TEST_F(DatabaseTest, ColdRunsCostMoreSimulatedIoThanHotRuns) {
  DatabaseOptions opts;
  opts.mode = IngestionMode::kEager;
  auto db = Database::Open(repo_->root(), opts);
  ASSERT_TRUE(db.ok());
  const char* sql = "SELECT COUNT(*) FROM D";
  (*db)->FlushBuffers();
  auto cold = (*db)->Query(sql);
  ASSERT_TRUE(cold.ok());
  auto hot = (*db)->Query(sql);
  ASSERT_TRUE(hot.ok());
  EXPECT_GT(cold->stats.sim_io_nanos, 0u);
  EXPECT_EQ(hot->stats.sim_io_nanos, 0u);
}

TEST_F(DatabaseTest, QueryStatsAreFilled) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK'");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.plan_nanos, 0u);
  EXPECT_GT(r->stats.exec_nanos, 0u);
  EXPECT_EQ(r->stats.result_rows, 1u);
  EXPECT_GT(r->stats.mount.samples_decoded, 0u);
  EXPECT_GT(r->stats.two_stage.stage1_nanos, 0u);
  EXPECT_GT(r->stats.two_stage.stage2_nanos, 0u);
  EXPECT_GT(r->stats.TotalSeconds(), 0.0);
}

TEST_F(DatabaseTest, ExplainShowsSplitForMixedQueries) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto text = (*db)->Explain(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK'");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("StageBreak"), std::string::npos);
  EXPECT_NE(text->find("after predicate pushdown"), std::string::npos);
}

TEST_F(DatabaseTest, ExplainMetadataOnlyHasNoSplit) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto text = (*db)->Explain("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("StageBreak"), std::string::npos);
  EXPECT_NE(text->find("no Q_f/Q_s split needed"), std::string::npos);
}

TEST_F(DatabaseTest, SqlErrorsSurfaceCleanly) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->Query("SELEC typo").ok());
  EXPECT_FALSE((*db)->Query("SELECT * FROM NoSuchTable").ok());
  EXPECT_FALSE((*db)->Query("SELECT no_such_column FROM F").ok());
}

TEST_F(DatabaseTest, EagerIndexJoinsMatchHashJoins) {
  DatabaseOptions hash_opts;
  hash_opts.mode = IngestionMode::kEager;
  DatabaseOptions index_opts = hash_opts;
  index_opts.use_index_joins = true;
  auto hash_db = Database::Open(repo_->root(), hash_opts);
  auto index_db = Database::Open(repo_->root(), index_opts);
  ASSERT_TRUE(hash_db.ok());
  ASSERT_TRUE(index_db.ok());
  const char* sql =
      "SELECT COUNT(*) FROM R JOIN D ON R.uri = D.uri "
      "AND R.record_id = D.record_id WHERE R.record_id = 0";
  auto a = (*hash_db)->Query(sql);
  auto b = (*index_db)->Query(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->table->GetValue(0, 0).int64(), b->table->GetValue(0, 0).int64());
}

TEST_F(DatabaseTest, QueryOptionsOverridesAreScopedToTheQuery) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  const char* sql = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";

  // A 1ns simulated deadline lets the first mount through and then cuts the
  // rest off — a partial result under the default kPartialResults policy.
  (*db)->FlushBuffers();
  QueryOptions tight_deadline;
  tight_deadline.sim_deadline_nanos = 1;
  auto partial = (*db)->Query(sql, tight_deadline);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->stats.two_stage.is_partial);

  // The override dies with the query: the database-wide default (no
  // deadline) is back for the next one.
  (*db)->FlushBuffers();
  auto full = (*db)->Query(sql);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->stats.two_stage.is_partial);
  EXPECT_EQ(full->stats.two_stage.files_skipped_deadline, 0u);
}

// The old QueryInteractive/QueryCancellable shims routed through the same
// QueryOptions fields exercised here; their callers now pass
// options.breakpoint / options.cancel directly.
TEST_F(DatabaseTest, BreakpointAndCancelViaQueryOptions) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  size_t breakpoints_seen = 0;
  QueryOptions bp_opts;
  bp_opts.breakpoint = [&](const BreakpointInfo&) {
    ++breakpoints_seen;
    return BreakpointDecision::kContinue;
  };
  auto r = (*db)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri",
                        bp_opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(breakpoints_seen, 0u);

  CancelToken token;
  QueryOptions opts;
  opts.cancel = &token;
  auto c = (*db)->Query("SELECT COUNT(*) FROM F", opts);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->stats.result_rows, 1u);
}

TEST_F(DatabaseTest, InformativenessEstimateTracksActualIngestion) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK'");
  ASSERT_TRUE(r.ok());
  const BreakpointInfo& bp = r->stats.two_stage.breakpoint;
  ASSERT_TRUE(r->stats.two_stage.breakpoint_evaluated);
  // Estimated rows to ingest equals the actual mounted rows (exact, because
  // the estimate is driven by R.n_samples).
  EXPECT_EQ(bp.est_rows_to_ingest, r->stats.mount.samples_decoded);
}

TEST_F(DatabaseTest, EstimatedResultRowsCloseToActualForTimeWindows) {
  auto db = Database::Open(repo_->root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query(
      "SELECT D.sample_time, D.sample_value FROM R JOIN D ON R.uri = D.uri "
      "AND R.record_id = D.record_id "
      "WHERE R.start_time >= '2010-01-01T00:00:00.000' "
      "AND D.sample_time > '2010-01-01T06:00:00.000' "
      "AND D.sample_time < '2010-01-01T18:00:00.000'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const BreakpointInfo& bp = r->stats.two_stage.breakpoint;
  const double actual = static_cast<double>(r->table->num_rows());
  const double est = static_cast<double>(bp.est_result_rows);
  ASSERT_GT(actual, 0.0);
  EXPECT_NEAR(est / actual, 1.0, 0.25)
      << "estimate " << est << " vs actual " << actual;
}

}  // namespace
}  // namespace dex
