#include "core/plan_splitter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/seismic_schema.h"
#include "engine/optimizer.h"
#include "io/sim_disk.h"
#include "sql/binder.h"

namespace dex {
namespace {

class SplitTest : public ::testing::Test {
 protected:
  SplitTest() : disk_(), catalog_(&disk_) {
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("F", MakeFileSchema()),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("R", MakeRecordSchema()),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("D", MakeDataSchema()),
                              TableKind::kActual)
                    .ok());
  }

  SplitResult MustSplit(const std::string& sql) {
    auto plan = sql::PlanQuery(sql, catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto split = SplitPlan(*plan, catalog_);
    EXPECT_TRUE(split.ok()) << split.status().ToString();
    return split.ValueOr({});
  }

  /// Counts StageBreak nodes and checks Q_f has only metadata leaves.
  static int CountStageBreaks(const PlanPtr& p) {
    int n = p->kind == PlanKind::kStageBreak ? 1 : 0;
    for (const auto& c : p->children) n += CountStageBreaks(c);
    return n;
  }

  bool QfLeavesAreMetadataOnly(const PlanPtr& qf) {
    std::vector<std::string> tables;
    CollectTableNames(qf, &tables);
    for (const std::string& t : tables) {
      auto kind = catalog_.GetKind(t);
      if (!kind.ok() || *kind != TableKind::kMetadata) return false;
    }
    return !tables.empty();
  }

  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(SplitTest, MetadataOnlyQueryNotSplit) {
  const SplitResult s = MustSplit("SELECT * FROM F WHERE station = 'ISK'");
  EXPECT_FALSE(s.references_actual);
  EXPECT_TRUE(s.references_metadata);
  EXPECT_EQ(s.qf, nullptr);
  EXPECT_EQ(CountStageBreaks(s.plan), 0);
}

TEST_F(SplitTest, ActualOnlyQueryNotSplit) {
  const SplitResult s = MustSplit("SELECT * FROM D WHERE sample_value > 100");
  EXPECT_TRUE(s.references_actual);
  EXPECT_FALSE(s.references_metadata);
  EXPECT_EQ(s.qf, nullptr);
}

TEST_F(SplitTest, MixedQuerySplitsWithMetadataBranch) {
  const SplitResult s = MustSplit(
      "SELECT * FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id");
  EXPECT_TRUE(s.references_actual);
  EXPECT_TRUE(s.references_metadata);
  ASSERT_NE(s.qf, nullptr);
  EXPECT_EQ(CountStageBreaks(s.plan), 1);
  EXPECT_TRUE(QfLeavesAreMetadataOnly(s.qf));
}

TEST_F(SplitTest, PaperRewritePattern) {
  // The paper's example: m1 ⋈ (a1 ⋈ m2) must become a1 ⋈ (m1 ⋈ m2).
  // SQL join order F, D, R puts D between the metadata tables.
  const SplitResult s = MustSplit(
      "SELECT * FROM F JOIN D ON F.uri = D.uri "
      "JOIN R ON D.uri = R.uri AND D.record_id = R.record_id");
  ASSERT_NE(s.qf, nullptr);
  // Q_f must contain both F and R, and no D.
  std::vector<std::string> qf_tables;
  CollectTableNames(s.qf, &qf_tables);
  std::sort(qf_tables.begin(), qf_tables.end());
  EXPECT_EQ(qf_tables, (std::vector<std::string>{"F", "R"}));
  // The top join's left (outer) side holds the actual unit.
  // Find the join above the StageBreak.
  PlanPtr node = s.plan;
  while (node->kind != PlanKind::kJoin) node = node->children[0];
  std::vector<std::string> left_tables;
  CollectTableNames(node->children[0], &left_tables);
  EXPECT_EQ(left_tables, (std::vector<std::string>{"D"}));
}

TEST_F(SplitTest, FiltersTravelWithTheirUnits) {
  auto plan = sql::PlanQuery(
      "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK' AND D.sample_value > 5",
      catalog_);
  ASSERT_TRUE(plan.ok());
  auto pushed = PushDownPredicates(*plan, catalog_);
  ASSERT_TRUE(pushed.ok());
  auto split = SplitPlan(*pushed, catalog_);
  ASSERT_TRUE(split.ok());
  ASSERT_NE(split->qf, nullptr);
  // The station filter must appear inside Q_f.
  const std::string qf_str = split->qf->ToString();
  EXPECT_NE(qf_str.find("station"), std::string::npos);
  EXPECT_EQ(qf_str.find("sample_value"), std::string::npos);
}

TEST_F(SplitTest, QfSchemaContainsUriForFileIdentification) {
  const SplitResult s = MustSplit(
      "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id");
  ASSERT_NE(s.qf, nullptr);
  ASSERT_NE(s.qf->output_schema, nullptr);
  bool has_uri = false;
  for (const Field& f : s.qf->output_schema->fields()) {
    if (f.name == "uri") has_uri = true;
  }
  EXPECT_TRUE(has_uri);
}

TEST_F(SplitTest, TwoActualUnitsStackAboveQf) {
  // D joined twice (self-join via metadata): a1 ⋈ (a2 ⋈ (m...)).
  const SplitResult s = MustSplit(
      "SELECT * FROM D JOIN R ON D.uri = R.uri "
      "JOIN F ON R.uri = F.uri");
  ASSERT_NE(s.qf, nullptr);
  std::vector<std::string> qf_tables;
  CollectTableNames(s.qf, &qf_tables);
  std::sort(qf_tables.begin(), qf_tables.end());
  EXPECT_EQ(qf_tables, (std::vector<std::string>{"F", "R"}));
}

TEST_F(SplitTest, SplitPlanStillAnalyzed) {
  const SplitResult s = MustSplit(
      "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK'");
  ASSERT_NE(s.plan, nullptr);
  EXPECT_NE(s.plan->output_schema, nullptr);
  EXPECT_EQ(s.plan->output_schema->num_fields(), 1u);
}

TEST_F(SplitTest, CartesianMetadataBranchAllowed) {
  // F and R joined only through D: Q_f = F × R (cartesian), as the paper
  // allows ("Q_f might contain cartesian products").
  const SplitResult s = MustSplit(
      "SELECT * FROM F JOIN D ON F.uri = D.uri "
      "JOIN R ON D.record_id = R.record_id");
  ASSERT_NE(s.qf, nullptr);
  std::vector<std::string> qf_tables;
  CollectTableNames(s.qf, &qf_tables);
  EXPECT_EQ(qf_tables.size(), 2u);
}

TEST_F(SplitTest, NoJoinMixedQueryLeftUnsplit) {
  // Union of metadata and actual scans (not expressible in our SQL; build
  // by hand) — splitter must leave it alone rather than crash.
  PlanPtr plan = MakeUnion({MakeProject({Expr::ColumnRef("uri")}, {"uri"},
                                        MakeScan("F")),
                            MakeProject({Expr::ColumnRef("uri")}, {"uri"},
                                        MakeScan("D"))});
  ASSERT_TRUE(AnalyzePlan(plan, catalog_).ok());
  auto s = SplitPlan(plan, catalog_);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->qf, nullptr);
  EXPECT_TRUE(s->references_actual);
  EXPECT_TRUE(s->references_metadata);
}

}  // namespace
}  // namespace dex
