// Tests for the persistent cache's columnar file codec: lossless roundtrip
// across every column type and encoding, and — the robustness contract — a
// clean Corruption (never a crash, never wrong rows) for every way the bytes
// can be damaged: truncation at any length, a bit flip at any offset, bad
// magic, implausible structure.

#include "io/columnar_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include "storage/schema.h"
#include "storage/table.h"
#include "test_util.h"

namespace dex {
namespace {

SchemaPtr MakeMixedSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddField({"uri", DataType::kString, "D"});
  schema->AddField({"record_id", DataType::kInt64, "D"});
  schema->AddField({"sample_time", DataType::kTimestamp, "D"});
  schema->AddField({"sample_value", DataType::kDouble, "D"});
  schema->AddField({"ok", DataType::kBool, "D"});
  return schema;
}

// Builds a table shaped like a real mounted partial table: constant uri
// column, strided time column, low-cardinality strings, plus irregular
// values that defeat the compact encodings.
TablePtr MakeMixedTable(size_t rows) {
  auto table = std::make_shared<Table>("D", MakeMixedSchema());
  for (size_t i = 0; i < rows; ++i) {
    table->mutable_column(0)->AppendString("/repo/OR/ISK/BHE.mseed");
    table->mutable_column(1)->AppendInt64(static_cast<int64_t>(i / 7));
    table->mutable_column(2)->AppendInt64(1000 + static_cast<int64_t>(i) * 250);
    table->mutable_column(3)->AppendDouble(std::sin(static_cast<double>(i)));
    table->mutable_column(4)->AppendInt64(i % 3 == 0 ? 1 : 0);
  }
  EXPECT_TRUE(table->CommitAppendedRows(rows).ok());
  return table;
}

ColumnarFileMeta MakeMeta() {
  ColumnarFileMeta meta;
  meta.source_uri = "/repo/OR/ISK/BHE.mseed";
  meta.predicate_repr = "(D.sample_time >= 1000)";
  meta.window_pure = true;
  meta.window_lo = 1000;
  meta.window_hi = 99999;
  meta.source_size_bytes = 4096;
  meta.source_mtime_ms = 1723180800000;
  return meta;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  EXPECT_EQ(dex::testing::CanonicalRows(a), dex::testing::CanonicalRows(b));
}

TEST(ColumnarFile, RoundtripsMixedTypesLosslessly) {
  TablePtr table = MakeMixedTable(123);
  const ColumnarFileMeta meta = MakeMeta();
  const std::string bytes = EncodeColumnarFile(*table, meta);

  ColumnarFileMeta got;
  auto decoded = DecodeColumnarFile(bytes, &got);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->num_rows(), table->num_rows());
  EXPECT_EQ((*decoded)->num_columns(), table->num_columns());
  ExpectTablesEqual(*table, **decoded);
  EXPECT_EQ(got.source_uri, meta.source_uri);
  EXPECT_EQ(got.predicate_repr, meta.predicate_repr);
  EXPECT_EQ(got.window_pure, meta.window_pure);
  EXPECT_EQ(got.window_lo, meta.window_lo);
  EXPECT_EQ(got.window_hi, meta.window_hi);
  EXPECT_EQ(got.source_size_bytes, meta.source_size_bytes);
  EXPECT_EQ(got.source_mtime_ms, meta.source_mtime_ms);
  EXPECT_EQ(got.table_byte_size, table->ByteSize());
}

TEST(ColumnarFile, CompactEncodingsBeatRawFootprint) {
  // Constant + strided + dictionary encodings should make the file markedly
  // smaller than the in-memory footprint for repetitive data.
  TablePtr table = MakeMixedTable(4096);
  const std::string bytes = EncodeColumnarFile(*table, MakeMeta());
  EXPECT_LT(bytes.size(), table->ByteSize());
}

TEST(ColumnarFile, RoundtripsEmptyTable) {
  auto table = std::make_shared<Table>("D", MakeMixedSchema());
  ASSERT_TRUE(table->CommitAppendedRows(0).ok());
  const std::string bytes = EncodeColumnarFile(*table, MakeMeta());
  auto decoded = DecodeColumnarFile(bytes, nullptr);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->num_rows(), 0u);
  EXPECT_EQ((*decoded)->num_columns(), table->num_columns());
}

TEST(ColumnarFile, RoundtripsIrregularDoublesIncludingNaN) {
  auto schema = std::make_shared<Schema>();
  schema->AddField({"v", DataType::kDouble, "D"});
  auto table = std::make_shared<Table>("D", schema);
  const double values[] = {0.0, -0.0, 1e300, -1e-300,
                           std::numeric_limits<double>::infinity(),
                           std::nan("")};
  for (double v : values) table->mutable_column(0)->AppendDouble(v);
  ASSERT_TRUE(table->CommitAppendedRows(6).ok());
  auto decoded = DecodeColumnarFile(EncodeColumnarFile(*table, MakeMeta()),
                                    nullptr);
  ASSERT_TRUE(decoded.ok());
  const double* out = (*decoded)->column(0)->data_f64();
  const double* in = table->column(0)->data_f64();
  for (size_t i = 0; i < 6; ++i) {
    // Bit-exact, so NaN payloads and -0.0 survive.
    EXPECT_EQ(std::memcmp(&out[i], &in[i], sizeof(double)), 0) << i;
  }
}

TEST(ColumnarFile, ConstantNaNColumnRoundtrips) {
  // The const-detection must compare bits, not values (NaN != NaN).
  auto schema = std::make_shared<Schema>();
  schema->AddField({"v", DataType::kDouble, "D"});
  auto table = std::make_shared<Table>("D", schema);
  for (int i = 0; i < 10; ++i) table->mutable_column(0)->AppendDouble(std::nan(""));
  ASSERT_TRUE(table->CommitAppendedRows(10).ok());
  auto decoded = DecodeColumnarFile(EncodeColumnarFile(*table, MakeMeta()),
                                    nullptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::isnan((*decoded)->column(0)->data_f64()[9]));
}

TEST(ColumnarFile, TruncationAtEveryLengthIsCorruption) {
  TablePtr table = MakeMixedTable(40);
  const std::string bytes = EncodeColumnarFile(*table, MakeMeta());
  // Every strict prefix — header, mid-frame, mid-checksum, footer — must be
  // rejected as Corruption, never crash, never yield a table.
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeColumnarFile(bytes.substr(0, len), nullptr);
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption()) << len;
  }
}

TEST(ColumnarFile, BitFlipAtEveryOffsetIsCorruption) {
  TablePtr table = MakeMixedTable(24);
  const std::string bytes = EncodeColumnarFile(*table, MakeMeta());
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string bad = bytes;
    bad[off] = static_cast<char>(bad[off] ^ 0x04);
    auto decoded = DecodeColumnarFile(bad, nullptr);
    EXPECT_FALSE(decoded.ok()) << "bit flip at " << off << " decoded";
  }
}

TEST(ColumnarFile, TrailingGarbageAndBadMagicAreCorruption) {
  TablePtr table = MakeMixedTable(8);
  const std::string bytes = EncodeColumnarFile(*table, MakeMeta());
  EXPECT_TRUE(DecodeColumnarFile(bytes + "x", nullptr).status().IsCorruption());
  EXPECT_TRUE(DecodeColumnarFile("", nullptr).status().IsCorruption());
  EXPECT_TRUE(DecodeColumnarFile("DXCOL999", nullptr).status().IsCorruption());
  std::string wrong_version = bytes;
  wrong_version[7] = '9';  // future format generation
  EXPECT_TRUE(
      DecodeColumnarFile(wrong_version, nullptr).status().IsCorruption());
}

TEST(ColumnarFile, PeekReadsHeaderWithoutFrames) {
  TablePtr table = MakeMixedTable(16);
  const ColumnarFileMeta meta = MakeMeta();
  const std::string bytes = EncodeColumnarFile(*table, meta);
  ColumnarFileMeta got;
  ASSERT_TRUE(PeekColumnarMeta(bytes, &got).ok());
  EXPECT_EQ(got.source_uri, meta.source_uri);
  EXPECT_EQ(got.source_mtime_ms, meta.source_mtime_ms);
  // Peek validates the header checksum too.
  std::string bad = bytes;
  bad[10] = static_cast<char>(bad[10] ^ 0x01);
  EXPECT_FALSE(PeekColumnarMeta(bad, &got).ok());
}

}  // namespace
}  // namespace dex
