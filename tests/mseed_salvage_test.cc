// Record-level salvage: resynchronization past corrupt headers and payloads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/file_io.h"
#include "mseed/reader.h"
#include "mseed/writer.h"

namespace dex::mseed {
namespace {

RecordData MakeRecord(int64_t start_ms, int n, uint8_t encoding = 1) {
  RecordData rec;
  rec.network = "OR";
  rec.station = "ISK";
  rec.channel = "BHZ";
  rec.location = "00";
  rec.start_time_ms = start_ms;
  rec.sample_rate_hz = 10.0;
  rec.encoding = encoding;
  for (int i = 0; i < n; ++i) rec.samples.push_back(i * 3 - n);
  return rec;
}

std::string FiveRecordImage(uint8_t encoding = 1) {
  return SerializeFile({MakeRecord(0, 100, encoding),
                        MakeRecord(10000, 120, encoding),
                        MakeRecord(20000, 140, encoding),
                        MakeRecord(30000, 160, encoding),
                        MakeRecord(40000, 180, encoding)});
}

/// Header offsets of every record in a well-formed image.
std::vector<uint64_t> HeaderOffsets(const std::string& image) {
  auto infos = Reader::ScanHeadersInMemory(image);
  EXPECT_TRUE(infos.ok()) << infos.status().ToString();
  std::vector<uint64_t> offsets;
  for (const auto& info : *infos) offsets.push_back(info.header_offset);
  return offsets;
}

TEST(SalvageTest, CleanFileSalvagesEverythingWithEmptyReport) {
  const std::string image = FiveRecordImage();
  SalvageReport report;
  const auto records = Reader::SalvageInMemory(image, "mem:a", &report);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_ok, 5u);
  EXPECT_EQ(report.records_salvaged, 0u);
  EXPECT_TRUE(report.warnings.empty());
}

TEST(SalvageTest, CorruptPayloadSkipsOneRecordAndSalvagesTheRest) {
  std::string image = FiveRecordImage();
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  ASSERT_EQ(offsets.size(), 5u);
  // Mangle the third record's first Steim frame.
  image[offsets[2] + RecordHeader::kSerializedBytes + 3] ^= 0x7f;

  SalvageReport report;
  const auto records = Reader::SalvageInMemory(image, "mem:b", &report);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(report.records_ok, 2u);        // before the corruption
  EXPECT_EQ(report.records_skipped, 1u);   // the mangled record
  EXPECT_EQ(report.records_salvaged, 2u);  // recovered past it
  EXPECT_EQ(records[2].header.start_time_ms, 30000);
  EXPECT_EQ(records[3].header.start_time_ms, 40000);
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("mem:b"), std::string::npos)
      << "warning names the source";
}

TEST(SalvageTest, CorruptHeaderMagicResynchronizesToNextRecord) {
  std::string image = FiveRecordImage();
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  // Destroy the second record's magic: the reader loses the boundary chain
  // and must scan forward for the third record's header.
  image[offsets[1]] = 'X';

  SalvageReport report;
  const auto records = Reader::SalvageInMemory(image, "mem:c", &report);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].header.start_time_ms, 0);
  EXPECT_EQ(records[1].header.start_time_ms, 20000);
  EXPECT_EQ(report.records_skipped, 1u);
  EXPECT_GT(report.bytes_skipped, 0u);
  EXPECT_EQ(report.records_salvaged, 3u);
}

TEST(SalvageTest, TruncatedTailIsDroppedNotFatal) {
  std::string image = FiveRecordImage();
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  // Cut the file mid-way through the last record's payload.
  image.resize(offsets[4] + RecordHeader::kSerializedBytes + 7);

  SalvageReport report;
  const auto records = Reader::SalvageInMemory(image, "mem:d", &report);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(report.records_skipped, 1u);
  EXPECT_GT(report.bytes_skipped, 0u);
}

TEST(SalvageTest, GarbageFileYieldsNothingButDoesNotError) {
  std::string garbage(4096, '\xab');
  SalvageReport report;
  const auto records = Reader::SalvageInMemory(garbage, "mem:e", &report);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(report.records_ok, 0u);
  EXPECT_GT(report.bytes_skipped, 0u);
}

TEST(SalvageTest, MultipleCorruptionEventsAllRecovered) {
  std::string image = FiveRecordImage(/*encoding=*/2);  // Steim2 payloads
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  image[offsets[0] + RecordHeader::kSerializedBytes + 5] ^= 0x55;
  image[offsets[3] + RecordHeader::kSerializedBytes + 5] ^= 0x55;

  SalvageReport report;
  const auto records = Reader::SalvageInMemory(image, "mem:f", &report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(report.records_skipped, 2u);
  EXPECT_EQ(records[0].header.start_time_ms, 10000);
  EXPECT_EQ(records[1].header.start_time_ms, 20000);
  EXPECT_EQ(records[2].header.start_time_ms, 40000);
  EXPECT_GE(report.warnings.size(), 2u);
}

TEST(SalvageTest, SalvagedSamplesMatchTheOriginalEncoding) {
  const RecordData target = MakeRecord(30000, 160);
  std::string image = FiveRecordImage();
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  image[offsets[1] + RecordHeader::kSerializedBytes + 3] ^= 0x7f;

  SalvageReport report;
  const auto records = Reader::SalvageInMemory(image, "mem:g", &report);
  ASSERT_EQ(records.size(), 4u);
  // Record 3 (start 30000) survived untouched; its samples must round-trip
  // exactly despite sitting beyond a corruption event.
  EXPECT_EQ(records[2].samples, target.samples);
}

TEST(SalvageTest, FileVariantReadsFromDisk) {
  const std::string dir = "/tmp/dex_salvage_test";
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
  const std::string path = dir + "/damaged.mseed";
  std::string image = FiveRecordImage();
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  image[offsets[2] + RecordHeader::kSerializedBytes + 3] ^= 0x7f;
  ASSERT_TRUE(WriteStringToFile(path, image).ok());

  SalvageReport report;
  auto records = Reader::ReadAllRecordsSalvage(path, &report);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 4u);
  EXPECT_EQ(report.records_skipped, 1u);

  // A missing file is still an error — there are no bytes to salvage.
  SalvageReport missing_report;
  auto missing = Reader::ReadAllRecordsSalvage(dir + "/nope.mseed",
                                               &missing_report);
  EXPECT_FALSE(missing.ok());
  (void)RemoveDirRecursive(dir);
}

TEST(SalvageTest, StrictReaderNamesUriAndOffsetOnCorruption) {
  const std::string dir = "/tmp/dex_salvage_strict_test";
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
  const std::string path = dir + "/corrupt.mseed";
  std::string image = FiveRecordImage();
  const std::vector<uint64_t> offsets = HeaderOffsets(image);
  image[offsets[2] + RecordHeader::kSerializedBytes + 3] ^= 0x7f;
  ASSERT_TRUE(WriteStringToFile(path, image).ok());

  auto records = Reader::ReadAllRecords(path);
  ASSERT_FALSE(records.ok());
  const std::string msg = records.status().ToString();
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("offset " + std::to_string(offsets[2])), std::string::npos)
      << msg;
  (void)RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace dex::mseed
