#include "storage/hash_index.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

TablePtr MakeTable() {
  auto schema = std::make_shared<Schema>(
      Schema({{"uri", DataType::kString, "D"},
              {"record_id", DataType::kInt64, "D"},
              {"value", DataType::kDouble, "D"}}));
  auto t = std::make_shared<Table>("D", schema);
  const char* uris[] = {"f1", "f1", "f2", "f2", "f3"};
  const int64_t recs[] = {0, 1, 0, 0, 2};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::String(uris[i]), Value::Int64(recs[i]),
                              Value::Double(i * 1.5)})
                    .ok());
  }
  return t;
}

TEST(HashIndexTest, SingleStringKey) {
  const TablePtr t = MakeTable();
  auto index = HashIndex::Build(t.get(), {0}, "by_uri");
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE((*index)->Probe({Value::String("f1")}, &rows).ok());
  EXPECT_EQ(rows.size(), 2u);
  rows.clear();
  ASSERT_TRUE((*index)->Probe({Value::String("f3")}, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 4u);
}

TEST(HashIndexTest, MissingKeyYieldsEmpty) {
  const TablePtr t = MakeTable();
  auto index = HashIndex::Build(t.get(), {0}, "by_uri");
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE((*index)->Probe({Value::String("ghost")}, &rows).ok());
  EXPECT_TRUE(rows.empty());
}

TEST(HashIndexTest, CompositeKey) {
  const TablePtr t = MakeTable();
  auto index = HashIndex::Build(t.get(), {0, 1}, "pk");
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE(
      (*index)->Probe({Value::String("f2"), Value::Int64(0)}, &rows).ok());
  EXPECT_EQ(rows.size(), 2u);  // duplicate (f2, 0)
  rows.clear();
  ASSERT_TRUE(
      (*index)->Probe({Value::String("f1"), Value::Int64(1)}, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 1u);
}

TEST(HashIndexTest, ProbeArityChecked) {
  const TablePtr t = MakeTable();
  auto index = HashIndex::Build(t.get(), {0, 1}, "pk");
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> rows;
  EXPECT_TRUE((*index)->Probe({Value::String("f1")}, &rows).IsInvalidArgument());
}

TEST(HashIndexTest, BuildValidatesInputs) {
  const TablePtr t = MakeTable();
  EXPECT_FALSE(HashIndex::Build(nullptr, {0}, "x").ok());
  EXPECT_FALSE(HashIndex::Build(t.get(), {}, "x").ok());
  EXPECT_FALSE(HashIndex::Build(t.get(), {99}, "x").ok());
}

TEST(HashIndexTest, ByteSizeScalesWithEntries) {
  const TablePtr t = MakeTable();
  auto index = HashIndex::Build(t.get(), {0}, "x");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->ByteSize(), 5u * 12u);
  EXPECT_EQ((*index)->num_entries(), 5u);
}

TEST(HashIndexTest, DoubleKeyProbesByNumericValue) {
  const TablePtr t = MakeTable();
  auto index = HashIndex::Build(t.get(), {2}, "by_value");
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> rows;
  ASSERT_TRUE((*index)->Probe({Value::Double(3.0)}, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 2u);
}

}  // namespace
}  // namespace dex
