// Tests for gap/overlap coverage analysis (paper §5 "analyzed data" derived
// metadata): detection correctness on crafted streams and SQL queryability.

#include "core/coverage.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "mseed/writer.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

mseed::RecordData Rec(const std::string& station, const std::string& channel,
                      int64_t start_ms, int samples, double rate = 1.0) {
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = station;
  rec.channel = channel;
  rec.location = "00";
  rec.start_time_ms = start_ms;
  rec.sample_rate_hz = rate;
  for (int i = 0; i < samples; ++i) rec.samples.push_back(i);
  return rec;
}

class CoverageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique: parallel ctest runs each test in its own process.
    dir_ = "/tmp/dex_coverage_test_" + std::to_string(::getpid());
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::unique_ptr<Database> OpenRepo() {
    auto db = Database::Open(dir_, {});
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  std::string dir_;
};

TEST_F(CoverageTest, ContiguousStreamHasNoGapsOrOverlaps) {
  // Two records, the second starting exactly one interval after the first
  // record's last sample: 0..9s then 10..19s at 1 Hz.
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/a.mseed",
                               {Rec("ISK", "BHE", 0, 10),
                                Rec("ISK", "BHE", 10000, 10)})
                  .ok());
  auto db = OpenRepo();
  ASSERT_NE(db, nullptr);
  auto stats = db->AnalyzeCoverage();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->streams, 1u);
  EXPECT_EQ(stats->gaps, 0u);
  EXPECT_EQ(stats->overlaps, 0u);
}

TEST_F(CoverageTest, GapDetectedAndMeasured) {
  // 0..9s, then nothing until 60s: a gap from 10s to 60s (50s long).
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/a.mseed",
                               {Rec("ISK", "BHE", 0, 10),
                                Rec("ISK", "BHE", 60000, 10)})
                  .ok());
  auto db = OpenRepo();
  ASSERT_NE(db, nullptr);
  auto stats = db->AnalyzeCoverage();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->gaps, 1u);
  EXPECT_EQ(stats->total_gap_ms, 50000);
  // Queryable through SQL, stage 1 only.
  auto r = db->Query(
      "SELECT GAPS.station, GAPS.duration_ms FROM GAPS "
      "WHERE GAPS.duration_ms > 10000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->num_rows(), 1u);
  EXPECT_EQ(r->table->GetValue(0, 0).str(), "ISK");
  EXPECT_EQ(r->table->GetValue(0, 1).int64(), 50000);
  EXPECT_TRUE(r->stats.two_stage.stage1_only);
}

TEST_F(CoverageTest, OverlapDetected) {
  // 0..99s and 50..149s at 1 Hz: overlap from 50s to 99s.
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/a.mseed",
                               {Rec("ISK", "BHE", 0, 100),
                                Rec("ISK", "BHE", 50000, 100)})
                  .ok());
  auto db = OpenRepo();
  ASSERT_NE(db, nullptr);
  auto stats = db->AnalyzeCoverage();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->overlaps, 1u);
  EXPECT_EQ(stats->total_overlap_ms, 49000);  // 50s..99s inclusive ends
  auto r = db->Query("SELECT COUNT(*) FROM OVERLAPS");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table->GetValue(0, 0).int64(), 1);
}

TEST_F(CoverageTest, StreamsAreIndependent) {
  // A gap in ISK/BHE must not involve ANK/BHE records that fill the time.
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/isk.mseed",
                               {Rec("ISK", "BHE", 0, 10),
                                Rec("ISK", "BHE", 60000, 10)})
                  .ok());
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/ank.mseed",
                               {Rec("ANK", "BHE", 0, 200)})
                  .ok());
  auto db = OpenRepo();
  ASSERT_NE(db, nullptr);
  auto stats = db->AnalyzeCoverage();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->streams, 2u);
  EXPECT_EQ(stats->gaps, 1u);
}

TEST_F(CoverageTest, MultiDayStreamAcrossFiles) {
  // Records of the same stream spread over two files still form one stream.
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/day1.mseed",
                               {Rec("ISK", "BHE", 0, 10)}).ok());
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/day2.mseed",
                               {Rec("ISK", "BHE", 100000, 10)}).ok());
  auto db = OpenRepo();
  ASSERT_NE(db, nullptr);
  auto stats = db->AnalyzeCoverage();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->streams, 1u);
  EXPECT_EQ(stats->gaps, 1u);  // 10s..100s
}

TEST_F(CoverageTest, RerunReplacesTables) {
  ASSERT_TRUE(mseed::WriteFile(dir_ + "/a.mseed",
                               {Rec("ISK", "BHE", 0, 10),
                                Rec("ISK", "BHE", 60000, 10)})
                  .ok());
  auto db = OpenRepo();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->AnalyzeCoverage().ok());
  ASSERT_TRUE(db->AnalyzeCoverage().ok());  // second run must not fail
  auto r = db->Query("SELECT COUNT(*) FROM GAPS");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table->GetValue(0, 0).int64(), 1);
}

TEST_F(CoverageTest, GeneratorGapsAreFound) {
  ScopedRepo repo("coverage_generated", [] {
    auto gen = TinyRepoOptions();
    gen.gap_probability = 0.4;
    gen.num_days = 3;
    return gen;
  }());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto stats = (*db)->AnalyzeCoverage();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->gaps, 0u) << "40% record gap probability must show up";
  EXPECT_EQ(stats->overlaps, 0u) << "the generator never overlaps records";
  // Gap summary by stream in plain SQL.
  auto r = (*db)->Query(
      "SELECT GAPS.station, GAPS.channel, COUNT(*) AS n, "
      "SUM(GAPS.duration_ms) AS total_ms FROM GAPS "
      "GROUP BY GAPS.station, GAPS.channel ORDER BY total_ms DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->table->num_rows(), 0u);
}

}  // namespace
}  // namespace dex
