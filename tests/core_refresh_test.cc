// Tests for Database::Refresh(): the repository grows (and churns) while the
// database is open — the e-science scenario the paper opens with.

#include <fcntl.h>
#include <sys/stat.h>

#include <atomic>
#include <ctime>
#include <thread>

#include <gtest/gtest.h>

#include "core/database.h"
#include "mseed/generator.h"
#include "mseed/writer.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

mseed::RecordData NewRecord(const std::string& station, int64_t start_ms,
                            int samples) {
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = station;
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = start_ms;
  rec.sample_rate_hz = 1.0;
  for (int i = 0; i < samples; ++i) rec.samples.push_back(i);
  return rec;
}

/// Moves a file's mtime into the future so the registry sees it as changed.
void BumpMtime(const std::string& path, int64_t seconds_ahead) {
  struct timespec times[2] = {{0, 0}, {0, 0}};
  times[0].tv_sec = times[1].tv_sec = ::time(nullptr) + seconds_ahead;
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
}

/// Full textual dump of every metadata table a refresh touches — the
/// bit-identity witness for the worker-count invariance tests.
std::string DumpCatalog(Database* db) {
  std::string out;
  for (const char* name : {"F", "R", "QUARANTINE"}) {
    auto t = db->catalog()->GetTable(name);
    if (t.ok()) {
      out += name;
      out += ":\n";
      out += (*t)->ToString(1u << 20);
    }
  }
  return out;
}

/// Every RefreshStats field that must be bit-identical at any worker count.
/// Excluded by design: scan_nanos (wall clock), workers (the knob itself)
/// and parallel_sim_nanos (the critical path over `workers` lanes — it is
/// *supposed* to shrink with more lanes).
void ExpectSameRefresh(const RefreshStats& a, const RefreshStats& b) {
  EXPECT_EQ(a.files_added, b.files_added);
  EXPECT_EQ(a.files_changed, b.files_changed);
  EXPECT_EQ(a.files_removed, b.files_removed);
  EXPECT_EQ(a.files_scanned, b.files_scanned);
  EXPECT_EQ(a.files_reused, b.files_reused);
  EXPECT_EQ(a.files_quarantined, b.files_quarantined);
  EXPECT_EQ(a.read_retries, b.read_retries);
  EXPECT_EQ(a.sim_io_nanos, b.sim_io_nanos);
  EXPECT_EQ(a.serial_sim_nanos, b.serial_sim_nanos);
  EXPECT_EQ(a.is_partial, b.is_partial);
  EXPECT_EQ(a.files_skipped_deadline, b.files_skipped_deadline);
  EXPECT_EQ(a.warnings, b.warnings);
}

TEST(RefreshTest, NewFilesBecomeQueryable) {
  ScopedRepo repo("refresh_new", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(before.ok());
  const int64_t files_before = before->table->GetValue(0, 0).int64();

  // A new station's data arrives.
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               {NewRecord("NEWSTA", 1262304000000LL, 50)})
                  .ok());
  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed->files_added, 1u);
  EXPECT_EQ(refreshed->files_removed, 0u);

  auto after = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->table->GetValue(0, 0).int64(), files_before + 1);

  // And its actual data mounts like any other file.
  auto data = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NEWSTA'");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->table->GetValue(0, 0).int64(), 50);
}

TEST(RefreshTest, RemovedFilesDropOutOfMetadata) {
  ScopedRepo repo("refresh_removed", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(RemoveDirRecursive((*files)[0]).ok());

  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->files_removed, 1u);
  auto count = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->table->GetValue(0, 0).int64(),
            static_cast<int64_t>(files->size()) - 1);
  // Full scans no longer try to mount the vanished file.
  EXPECT_TRUE((*db)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri").ok());
}

TEST(RefreshTest, ChangedFilesDetected) {
  ScopedRepo repo("refresh_changed", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  // Overwrite one file with different content and a bumped mtime.
  ASSERT_TRUE(
      mseed::WriteFile((*files)[0], {NewRecord("ISK", 1262304000000LL, 9)}).ok());
  struct timespec times[2] = {{0, 0}, {0, 0}};
  times[0].tv_sec = times[1].tv_sec = ::time(nullptr) + 60;
  ASSERT_EQ(::utimensat(AT_FDCWD, (*files)[0].c_str(), times, 0), 0);

  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->files_changed, 1u);
  EXPECT_EQ(refreshed->files_added, 0u);
  // The record table reflects the rewritten file.
  auto r = (*db)->Query(
      "SELECT R.n_samples FROM R WHERE R.uri LIKE '%" +
      (*files)[0].substr((*files)[0].rfind('/') + 1) + "'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->num_rows(), 1u);
  EXPECT_EQ(r->table->GetValue(0, 0).int64(), 9);
}

TEST(RefreshTest, NoChangesIsCleanNoop) {
  ScopedRepo repo("refresh_noop", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM R");
  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->files_added, 0u);
  EXPECT_EQ(refreshed->files_changed, 0u);
  EXPECT_EQ(refreshed->files_removed, 0u);
  auto after = (*db)->Query("SELECT COUNT(*) FROM R");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->table->GetValue(0, 0).int64(),
            after->table->GetValue(0, 0).int64());
}

TEST(RefreshTest, EagerModeRefusesRefresh) {
  ScopedRepo repo("refresh_eager", TinyRepoOptions());
  DatabaseOptions opts;
  opts.mode = IngestionMode::kEager;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Refresh().status().IsNotImplemented());
}

TEST(RefreshTest, RepeatedRefreshesAccumulate) {
  ScopedRepo repo("refresh_repeat", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  for (int day = 0; day < 3; ++day) {
    ASSERT_TRUE(mseed::WriteFile(
                    repo.root() + "/NEW/OR.NEW.BHE.10" + std::to_string(day) +
                        ".mseed",
                    {NewRecord("NEWSTA", 1262304000000LL + day * 86400000LL, 20)})
                    .ok());
    auto refreshed = (*db)->Refresh();
    ASSERT_TRUE(refreshed.ok());
    EXPECT_EQ(refreshed->files_added, 1u);
  }
  auto data = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NEWSTA'");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->table->GetValue(0, 0).int64(), 60);
}

TEST(RefreshTest, WorkerCountInvarianceUnderFaults) {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 4;
  gen.channels_per_station = 4;
  gen.num_days = 2;  // 32 files
  ScopedRepo repo("refresh_invariance", gen);

  DatabaseOptions opts;
  opts.disk.faults.seed = 42;
  opts.disk.faults.transient_error_rate = 0.15;
  DatabaseOptions serial_opts = opts;
  serial_opts.stage1_threads = 1;
  DatabaseOptions parallel_opts = opts;
  parallel_opts.stage1_threads = 8;
  auto serial = Database::Open(repo.root(), serial_opts);
  auto parallel = Database::Open(repo.root(), parallel_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  // Churn the repository under both open databases: rewrite two files, add
  // one, remove one.
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_GE(files->size(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(mseed::WriteFile((*files)[i],
                                 {NewRecord("CHG", 1262304000000LL,
                                            static_cast<int>(7 + i))})
                    .ok());
    BumpMtime((*files)[i], 60);
  }
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               {NewRecord("NEWSTA", 1262304000000LL, 11)})
                  .ok());
  ASSERT_TRUE(RemoveDirRecursive((*files)[3]).ok());

  // One of the changed files' medium goes permanently bad in both databases:
  // its header parse (off the real filesystem) succeeds but the simulated
  // read fails after all retries, so it must end up quarantined.
  for (Database* db : {serial->get(), parallel->get()}) {
    auto entry = db->registry()->Get((*files)[0]);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    db->disk()->fault_injector()->FailObject(entry->object);
    db->FlushBuffers();  // scans must face the faulty medium cold
  }

  auto rs = (*serial)->Refresh();
  auto rp = (*parallel)->Refresh();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();

  EXPECT_EQ(rs->files_added, 1u);
  EXPECT_EQ(rs->files_changed, 2u);
  EXPECT_EQ(rs->files_removed, 1u);
  EXPECT_EQ(rs->files_scanned, 3u);
  EXPECT_EQ(rs->files_reused, files->size() - 3);
  EXPECT_EQ(rs->files_quarantined, 1u);
  EXPECT_GT(rs->read_retries, 0u);
  EXPECT_GT(rs->sim_io_nanos, 0u);
  EXPECT_EQ(rs->workers, 1u);
  EXPECT_EQ(rp->workers, 3u);  // 8 requested, capped at the 3 scan tasks

  ExpectSameRefresh(*rs, *rp);
  EXPECT_EQ(DumpCatalog(serial->get()), DumpCatalog(parallel->get()));
  EXPECT_TRUE((*serial)->registry()->IsQuarantined((*files)[0]));
  EXPECT_TRUE((*parallel)->registry()->IsQuarantined((*files)[0]));
}

TEST(RefreshTest, OnlyChangedFilesAreRescanned) {
  ScopedRepo repo("refresh_delta", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(
      mseed::WriteFile((*files)[0], {NewRecord("ISK", 1262304000000LL, 5)}).ok());
  BumpMtime((*files)[0], 60);

  auto first = (*db)->Refresh();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->files_scanned, 1u);
  EXPECT_EQ(first->files_changed, 1u);
  EXPECT_EQ(first->files_reused, files->size() - 1);

  // Nothing moved since: a refresh is a pure stat sweep, zero header parses.
  auto second = (*db)->Refresh();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->files_scanned, 0u);
  EXPECT_EQ(second->files_reused, files->size());
  EXPECT_EQ(second->sim_io_nanos, 0u);
}

TEST(RefreshTest, SnapshotDeltaReopenIsWorkerCountInvariant) {
  ScopedRepo repo("refresh_snapdelta", TinyRepoOptions());
  const std::string snap_a = repo.root() + "/.metadata.snap.a";
  const std::string snap_b = repo.root() + "/.metadata.snap.b";
  {
    DatabaseOptions o;
    o.metadata_snapshot_path = snap_a;
    auto db = Database::Open(repo.root(), o);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
  }
  std::string image;
  ASSERT_TRUE(ReadFileToString(snap_a, &image).ok());
  ASSERT_TRUE(WriteStringToFile(snap_b, image).ok());

  // Churn between sessions: one file rewritten, one new station arrives.
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(
      mseed::WriteFile((*files)[0], {NewRecord("ISK", 1262304000000LL, 6)}).ok());
  BumpMtime((*files)[0], 60);
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               {NewRecord("NEWSTA", 1262304000000LL, 9)})
                  .ok());

  DatabaseOptions oa;
  oa.metadata_snapshot_path = snap_a;
  oa.stage1_threads = 1;
  DatabaseOptions ob;
  ob.metadata_snapshot_path = snap_b;
  ob.stage1_threads = 8;
  auto a = Database::Open(repo.root(), oa);
  auto b = Database::Open(repo.root(), ob);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  // Instant-on delta: everything but the changed + new file comes from the
  // snapshot, and the parallel reopen is bit-identical to the serial one.
  EXPECT_EQ((*a)->open_stats().snapshot_files_reused, files->size() - 1);
  EXPECT_EQ((*b)->open_stats().snapshot_files_reused, files->size() - 1);
  EXPECT_GT((*a)->open_stats().sim_io_nanos, 0u);
  EXPECT_EQ((*a)->open_stats().sim_io_nanos, (*b)->open_stats().sim_io_nanos);
  EXPECT_EQ((*a)->open_stats().scan_serial_sim_nanos,
            (*b)->open_stats().scan_serial_sim_nanos);
  EXPECT_EQ(DumpCatalog(a->get()), DumpCatalog(b->get()));
}

TEST(RefreshTest, DeadlineYieldsDeterministicPartialRefresh) {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 4;  // 16 files
  ScopedRepo repo("refresh_deadline", gen);

  DatabaseOptions o1;
  o1.stage1_threads = 1;
  DatabaseOptions o8;
  o8.stage1_threads = 8;
  auto a = Database::Open(repo.root(), o1);
  auto b = Database::Open(repo.root(), o8);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  for (const std::string& f : *files) BumpMtime(f, 60);
  (*a)->FlushBuffers();
  (*b)->FlushBuffers();

  // Probe what rescanning every header costs on this medium: a fresh open
  // does exactly the reads the refresh is about to do.
  uint64_t full_sim = 0;
  {
    auto probe = Database::Open(repo.root(), o1);
    ASSERT_TRUE(probe.ok());
    full_sim = (*probe)->open_stats().sim_io_nanos;
  }
  ASSERT_GT(full_sim, 0u);

  // Half the budget: the scan must stop admitting header parses partway
  // through, identically at any worker count (governed scans serialize).
  (*a)->set_sim_deadline_nanos(full_sim / 2);
  (*b)->set_sim_deadline_nanos(full_sim / 2);
  auto ra = (*a)->Refresh();
  auto rb = (*b)->Refresh();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_TRUE(ra->is_partial);
  EXPECT_GT(ra->files_scanned, 0u);
  EXPECT_GT(ra->files_skipped_deadline, 0u);
  EXPECT_EQ(ra->files_scanned + ra->files_skipped_deadline, files->size());
  // Skipped files fall back to their stale catalog rows — nothing vanishes.
  EXPECT_EQ(ra->files_reused, ra->files_skipped_deadline);
  ExpectSameRefresh(*ra, *rb);
  EXPECT_EQ(DumpCatalog(a->get()), DumpCatalog(b->get()));

  (*a)->set_sim_deadline_nanos(0);
  (*b)->set_sim_deadline_nanos(0);
  auto count = (*a)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->table->GetValue(0, 0).int64(),
            static_cast<int64_t>(files->size()));

  // With the deadline lifted, the next refresh picks up exactly the files
  // the partial one left at their stale rows.
  auto fa = (*a)->Refresh();
  auto fb = (*b)->Refresh();
  ASSERT_TRUE(fa.ok()) << fa.status().ToString();
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  EXPECT_FALSE(fa->is_partial);
  EXPECT_EQ(fa->files_scanned, ra->files_skipped_deadline);
  EXPECT_EQ(fa->files_changed, ra->files_skipped_deadline);
  ExpectSameRefresh(*fa, *fb);
  EXPECT_EQ(DumpCatalog(a->get()), DumpCatalog(b->get()));
}

// --- Snapshot isolation: Refresh publishes a new catalog epoch; queries run
// --- against the epoch pinned at their submission.

TEST(RefreshTest, QueryAgainstPinnedEpochSeesPreRefreshRows) {
  ScopedRepo repo("refresh_epoch_pin", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(before.ok());
  const int64_t files_before = before->table->GetValue(0, 0).int64();
  const uint64_t epoch_before = (*db)->current_epoch();
  EXPECT_EQ(before->stats.epoch, epoch_before);

  // Pin "now", as an admission gate would, then let the repository move on.
  EpochPtr pinned = (*db)->PinEpoch();
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               {NewRecord("NEWSTA", 1262304000000LL, 50)})
                  .ok());
  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed->files_added, 1u);
  EXPECT_EQ(refreshed->epoch, epoch_before + 1);
  EXPECT_EQ((*db)->current_epoch(), epoch_before + 1);

  // The pinned query runs *after* the publish yet sees the pre-refresh
  // snapshot — including its stage-2 side: the new station is invisible.
  auto old_count = (*db)->Query("SELECT COUNT(*) FROM F", {}, pinned);
  ASSERT_TRUE(old_count.ok()) << old_count.status().ToString();
  EXPECT_EQ(old_count->table->GetValue(0, 0).int64(), files_before);
  EXPECT_EQ(old_count->stats.epoch, epoch_before);
  auto old_data = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NEWSTA'",
      {}, (*db)->PinEpoch());
  // (A fresh pin sees the new epoch; the original pin still doesn't.)
  ASSERT_TRUE(old_data.ok()) << old_data.status().ToString();
  EXPECT_EQ(old_data->table->GetValue(0, 0).int64(), 50);
  auto still_old = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NEWSTA'",
      {}, std::move(pinned));
  ASSERT_TRUE(still_old.ok()) << still_old.status().ToString();
  EXPECT_EQ(still_old->table->GetValue(0, 0).int64(), 0);

  // An unpinned query naturally runs on the latest epoch.
  auto new_count = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(new_count.ok());
  EXPECT_EQ(new_count->table->GetValue(0, 0).int64(), files_before + 1);
  EXPECT_EQ(new_count->stats.epoch, epoch_before + 1);
}

TEST(RefreshTest, SupersededEpochRetiresWhenLastPinDrops) {
  ScopedRepo repo("refresh_epoch_retire", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());

  // Publish epoch 2 so we can pin a non-initial epoch (the initial epoch is
  // held alive by the database itself for its whole lifetime).
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               {NewRecord("NEWSTA", 1262304000000LL, 20)})
                  .ok());
  ASSERT_TRUE((*db)->Refresh().ok());
  const uint64_t epoch2 = (*db)->current_epoch();
  EpochPtr pin = (*db)->PinEpoch();
  ASSERT_EQ(pin->id, epoch2);

  // Supersede it. The pin keeps it alive: nothing retires yet.
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.001.mseed",
                               {NewRecord("NEWSTA", 1262390400000LL, 20)})
                  .ok());
  const uint64_t retired_before = (*db)->epochs_retired();
  ASSERT_TRUE((*db)->Refresh().ok());
  EXPECT_EQ((*db)->current_epoch(), epoch2 + 1);
  EXPECT_EQ((*db)->epochs_retired(), retired_before);

  // Last pin drops -> the superseded epoch's catalog is freed and counted.
  pin.reset();
  EXPECT_EQ((*db)->epochs_retired(), retired_before + 1);
}

TEST(RefreshTest, RetirementRacesPublishWhileQueuedQueryPinsOldEpoch) {
  // The serving layer's admission gate pins an epoch when a query is
  // *queued*, possibly long before it runs. Meanwhile refreshes keep
  // publishing new epochs and other queries' short-lived pins keep dropping
  // — so EpochManager's retire path (pin-drop side) races its Publish path
  // (refresh side) continuously. Run under TSan, this is the regression
  // net for that handoff; the assertions below pin down the semantics.
  ScopedRepo repo("refresh_retire_vs_publish", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());

  // Publish epoch 2 first: the initial epoch is held by the database itself
  // and would never retire, which would muddy the final retirement check.
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.base.mseed",
                               {NewRecord("NEWSTA", 1262217600000LL, 10)})
                  .ok());
  ASSERT_TRUE((*db)->Refresh().ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(before.ok());
  const int64_t files_before = before->table->GetValue(0, 0).int64();

  // The queued query's pin: taken now, used only after every publish below.
  EpochPtr queued_pin = (*db)->PinEpoch();
  const uint64_t queued_epoch = queued_pin->id;

  // Publisher: refreshes adding one file each, every one superseding the
  // current epoch.
  constexpr int kPublishes = 4;
  std::atomic<int> publish_failures{0};
  std::thread publisher([&] {
    for (int i = 0; i < kPublishes; ++i) {
      const std::string path = repo.root() + "/NEW/OR.NEW.BHE.00" +
                               std::to_string(i) + ".mseed";
      if (!mseed::WriteFile(path, {NewRecord("NEWSTA",
                                             1262304000000LL + i * 86400000LL,
                                             10)})
               .ok() ||
          !(*db)->Refresh().ok()) {
        publish_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Churn: short-lived pins whose drops retire superseded epochs while the
  // publisher is mid-Publish.
  std::atomic<int> reader_failures{0};
  std::thread reader([&] {
    for (int i = 0; i < 100; ++i) {
      EpochPtr pin = (*db)->PinEpoch();
      auto r = (*db)->Query("SELECT COUNT(*) FROM F", {}, std::move(pin));
      if (!r.ok()) reader_failures.fetch_add(1, std::memory_order_relaxed);
    }
  });

  publisher.join();
  reader.join();
  EXPECT_EQ(publish_failures.load(), 0);
  EXPECT_EQ(reader_failures.load(), 0);

  // The queued query finally runs: its snapshot survived every publish.
  auto queued = (*db)->Query("SELECT COUNT(*) FROM F", {}, queued_pin);
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(queued->stats.epoch, queued_epoch);
  EXPECT_EQ(queued->table->GetValue(0, 0).int64(), files_before);

  // Dropping the last pin retires the (long superseded) queued epoch.
  const uint64_t retired_before = (*db)->epochs_retired();
  queued_pin.reset();
  EXPECT_EQ((*db)->epochs_retired(), retired_before + 1);
  auto latest = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->table->GetValue(0, 0).int64(),
            files_before + kPublishes);
}

TEST(RefreshTest, ConcurrentRefreshAndPinnedQueriesAreIsolated) {
  ScopedRepo repo("refresh_epoch_race", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(before.ok());
  const int64_t files_before = before->table->GetValue(0, 0).int64();

  // Reader thread: queries pinned to the pre-refresh epoch, racing the
  // refresh publishes below. Every result must be the pre-refresh count.
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  EpochPtr pinned = (*db)->PinEpoch();
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = (*db)->Query("SELECT COUNT(*) FROM F", {}, pinned);
      if (!r.ok() || r->table->GetValue(0, 0).int64() != files_before) {
        reader_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Writer (this thread): three refreshes, each adding a file, racing the
  // reader. Unpinned queries between them track the moving latest epoch.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mseed::WriteFile(
                    repo.root() + "/NEW/OR.NEW.BHE.00" + std::to_string(i) +
                        ".mseed",
                    {NewRecord("NEWSTA", 1262304000000LL + i * 86400000LL, 10)})
                    .ok());
    auto r = (*db)->Refresh();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto latest = (*db)->Query("SELECT COUNT(*) FROM F");
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(latest->table->GetValue(0, 0).int64(), files_before + i + 1);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(reader_failures.load(), 0);
}

}  // namespace
}  // namespace dex
