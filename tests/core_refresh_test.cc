// Tests for Database::Refresh(): the repository grows (and churns) while the
// database is open — the e-science scenario the paper opens with.

#include <fcntl.h>
#include <sys/stat.h>

#include <ctime>

#include <gtest/gtest.h>

#include "core/database.h"
#include "mseed/generator.h"
#include "mseed/writer.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

mseed::RecordData NewRecord(const std::string& station, int64_t start_ms,
                            int samples) {
  mseed::RecordData rec;
  rec.network = "OR";
  rec.station = station;
  rec.channel = "BHE";
  rec.location = "00";
  rec.start_time_ms = start_ms;
  rec.sample_rate_hz = 1.0;
  for (int i = 0; i < samples; ++i) rec.samples.push_back(i);
  return rec;
}

TEST(RefreshTest, NewFilesBecomeQueryable) {
  ScopedRepo repo("refresh_new", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(before.ok());
  const int64_t files_before = before->table->GetValue(0, 0).int64();

  // A new station's data arrives.
  ASSERT_TRUE(mseed::WriteFile(repo.root() + "/NEW/OR.NEW.BHE.000.mseed",
                               {NewRecord("NEWSTA", 1262304000000LL, 50)})
                  .ok());
  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed->files_added, 1u);
  EXPECT_EQ(refreshed->files_removed, 0u);

  auto after = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->table->GetValue(0, 0).int64(), files_before + 1);

  // And its actual data mounts like any other file.
  auto data = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NEWSTA'");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->table->GetValue(0, 0).int64(), 50);
}

TEST(RefreshTest, RemovedFilesDropOutOfMetadata) {
  ScopedRepo repo("refresh_removed", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(RemoveDirRecursive((*files)[0]).ok());

  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->files_removed, 1u);
  auto count = (*db)->Query("SELECT COUNT(*) FROM F");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->table->GetValue(0, 0).int64(),
            static_cast<int64_t>(files->size()) - 1);
  // Full scans no longer try to mount the vanished file.
  EXPECT_TRUE((*db)->Query("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri").ok());
}

TEST(RefreshTest, ChangedFilesDetected) {
  ScopedRepo repo("refresh_changed", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto files = ListFiles(repo.root(), ".mseed");
  ASSERT_TRUE(files.ok());
  // Overwrite one file with different content and a bumped mtime.
  ASSERT_TRUE(
      mseed::WriteFile((*files)[0], {NewRecord("ISK", 1262304000000LL, 9)}).ok());
  struct timespec times[2] = {{0, 0}, {0, 0}};
  times[0].tv_sec = times[1].tv_sec = ::time(nullptr) + 60;
  ASSERT_EQ(::utimensat(AT_FDCWD, (*files)[0].c_str(), times, 0), 0);

  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->files_changed, 1u);
  EXPECT_EQ(refreshed->files_added, 0u);
  // The record table reflects the rewritten file.
  auto r = (*db)->Query(
      "SELECT R.n_samples FROM R WHERE R.uri LIKE '%" +
      (*files)[0].substr((*files)[0].rfind('/') + 1) + "'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->num_rows(), 1u);
  EXPECT_EQ(r->table->GetValue(0, 0).int64(), 9);
}

TEST(RefreshTest, NoChangesIsCleanNoop) {
  ScopedRepo repo("refresh_noop", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto before = (*db)->Query("SELECT COUNT(*) FROM R");
  auto refreshed = (*db)->Refresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->files_added, 0u);
  EXPECT_EQ(refreshed->files_changed, 0u);
  EXPECT_EQ(refreshed->files_removed, 0u);
  auto after = (*db)->Query("SELECT COUNT(*) FROM R");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->table->GetValue(0, 0).int64(),
            after->table->GetValue(0, 0).int64());
}

TEST(RefreshTest, EagerModeRefusesRefresh) {
  ScopedRepo repo("refresh_eager", TinyRepoOptions());
  DatabaseOptions opts;
  opts.mode = IngestionMode::kEager;
  auto db = Database::Open(repo.root(), opts);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Refresh().status().IsNotImplemented());
}

TEST(RefreshTest, RepeatedRefreshesAccumulate) {
  ScopedRepo repo("refresh_repeat", TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  for (int day = 0; day < 3; ++day) {
    ASSERT_TRUE(mseed::WriteFile(
                    repo.root() + "/NEW/OR.NEW.BHE.10" + std::to_string(day) +
                        ".mseed",
                    {NewRecord("NEWSTA", 1262304000000LL + day * 86400000LL, 20)})
                    .ok());
    auto refreshed = (*db)->Refresh();
    ASSERT_TRUE(refreshed.ok());
    EXPECT_EQ(refreshed->files_added, 1u);
  }
  auto data = (*db)->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'NEWSTA'");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->table->GetValue(0, 0).int64(), 60);
}

}  // namespace
}  // namespace dex
