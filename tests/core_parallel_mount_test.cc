// Parallel stage-2 ingestion: results, fault outcomes, and simulated time
// must be bit-identical across worker counts — parallelism is an execution
// detail, never an observable one (except for the speedup itself).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "io/file_io.h"
#include "test_util.h"

namespace dex {
namespace {

using ::dex::testing::CanonicalRows;
using ::dex::testing::ScopedRepo;
using ::dex::testing::TinyRepoOptions;

/// 64 files: 4 stations x 4 channels x 4 days.
mseed::GeneratorOptions SixtyFourFileRepo() {
  mseed::GeneratorOptions gen = TinyRepoOptions();
  gen.num_stations = 4;
  gen.channels_per_station = 4;
  gen.num_days = 4;
  return gen;
}

const char* kCountAll = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";
const char* kPerStation =
    "SELECT F.station, AVG(D.sample_value), COUNT(*) "
    "FROM F JOIN D ON F.uri = D.uri "
    "GROUP BY F.station ORDER BY F.station";
const char* kFiltered =
    "SELECT COUNT(*), MIN(D.sample_value), MAX(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri WHERE D.sample_value > 0";

std::unique_ptr<Database> OpenWithThreads(const std::string& root,
                                          size_t num_threads,
                                          DatabaseOptions opts = {}) {
  opts.two_stage.num_threads = num_threads;
  auto db = Database::Open(root, opts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

TEST(ParallelMount, ResultsAreIdenticalAcrossThreadCounts) {
  ScopedRepo repo("pmount_equiv", SixtyFourFileRepo());
  auto serial = OpenWithThreads(repo.root(), 1);
  auto parallel = OpenWithThreads(repo.root(), 8);

  for (const char* sql : {kCountAll, kPerStation, kFiltered}) {
    auto s = serial->Query(sql);
    auto p = parallel->Query(sql);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_EQ(CanonicalRows(*s->table), CanonicalRows(*p->table)) << sql;
    EXPECT_EQ(s->stats.mount.mounts, p->stats.mount.mounts) << sql;
    EXPECT_EQ(s->stats.mount.records_decoded, p->stats.mount.records_decoded)
        << sql;
    EXPECT_EQ(s->stats.mount.samples_decoded, p->stats.mount.samples_decoded)
        << sql;
    EXPECT_EQ(s->stats.files_failed, 0u) << sql;
    EXPECT_EQ(p->stats.files_failed, 0u) << sql;
  }
  EXPECT_EQ(serial->registry()->num_quarantined(), 0u);
  EXPECT_EQ(parallel->registry()->num_quarantined(), 0u);
}

TEST(ParallelMount, SerialModeKeepsLegacyAccounting) {
  ScopedRepo repo("pmount_legacy", SixtyFourFileRepo());
  auto db = OpenWithThreads(repo.root(), 1);
  auto r = db->Query(kCountAll);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.two_stage.workers, 1u);
  EXPECT_EQ(r->stats.two_stage.mount_tasks, 0u);
  EXPECT_EQ(r->stats.two_stage.parallel_sim_nanos, 0u);
  EXPECT_EQ(r->stats.two_stage.serial_sim_nanos, 0u);
  EXPECT_EQ(r->stats.mount.mounts, 64u);
}

TEST(ParallelMount, TransientFaultOutcomesMatchAcrossThreadCounts) {
  ScopedRepo repo("pmount_transient", SixtyFourFileRepo());
  DatabaseOptions opts;
  opts.disk.faults.seed = 42;
  opts.disk.faults.transient_error_rate = 0.10;

  auto serial = OpenWithThreads(repo.root(), 1, opts);
  auto parallel = OpenWithThreads(repo.root(), 8, opts);
  // The stage-1 scan retried its header reads to success and left every
  // file's pages resident; flush so the mounts face the faulty medium cold.
  serial->FlushBuffers();
  parallel->FlushBuffers();

  auto s = serial->Query(kCountAll);
  auto p = parallel->Query(kCountAll);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(CanonicalRows(*s->table), CanonicalRows(*p->table));

  // The fate of the k-th read of an object depends only on (seed, object, k),
  // so the retry schedule is identical no matter how tasks interleave.
  EXPECT_GT(s->stats.read_retries, 0u);
  EXPECT_EQ(s->stats.read_retries, p->stats.read_retries);
  EXPECT_EQ(s->stats.files_failed, 0u);
  EXPECT_EQ(p->stats.files_failed, 0u);
  EXPECT_EQ(serial->disk()->fault_injector()->stats().transient_faults,
            parallel->disk()->fault_injector()->stats().transient_faults);
}

TEST(ParallelMount, PermanentFaultOutcomesMatchAcrossThreadCounts) {
  ScopedRepo repo("pmount_permanent", SixtyFourFileRepo());
  auto serial = OpenWithThreads(repo.root(), 1);
  auto parallel = OpenWithThreads(repo.root(), 8);

  // The same three files go permanently bad under both databases.
  std::vector<std::string> uris = serial->registry()->AllUris();
  ASSERT_GE(uris.size(), 3u);
  for (Database* db : {serial.get(), parallel.get()}) {
    for (size_t i = 0; i < 3; ++i) {
      auto entry = db->registry()->Get(uris[i]);
      ASSERT_TRUE(entry.ok());
      db->disk()->fault_injector()->FailObject(entry->object);
    }
    db->FlushBuffers();
  }

  auto s = serial->Query(kCountAll);
  auto p = parallel->Query(kCountAll);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(CanonicalRows(*s->table), CanonicalRows(*p->table));
  EXPECT_EQ(s->stats.files_failed, 3u);
  EXPECT_EQ(p->stats.files_failed, 3u);
  EXPECT_EQ(serial->registry()->num_quarantined(), 3u);
  EXPECT_EQ(parallel->registry()->num_quarantined(), 3u);
  // Warnings are merged at the wave barrier in task (= union branch) order,
  // so even their order matches the serial run.
  EXPECT_EQ(s->stats.warnings, p->stats.warnings);

  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(serial->registry()->IsQuarantined(uris[i])) << uris[i];
    EXPECT_TRUE(parallel->registry()->IsQuarantined(uris[i])) << uris[i];
  }
}

TEST(ParallelMount, SalvageOutcomesMatchAcrossThreadCounts) {
  ScopedRepo repo("pmount_salvage", SixtyFourFileRepo());
  // Damage the first record's payload of one file before either opens.
  {
    auto probe = Database::Open(repo.root(), {});
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    const std::vector<std::string> uris = (*probe)->registry()->AllUris();
    ASSERT_FALSE(uris.empty());
    std::string image;
    ASSERT_TRUE(ReadFileToString(uris[0], &image).ok());
    image[70] = static_cast<char>(image[70] ^ 0x7f);
    ASSERT_TRUE(WriteStringToFile(uris[0], image).ok());
  }

  auto serial = OpenWithThreads(repo.root(), 1);
  auto parallel = OpenWithThreads(repo.root(), 8);
  auto s = serial->Query(kCountAll);
  auto p = parallel->Query(kCountAll);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(CanonicalRows(*s->table), CanonicalRows(*p->table));
  EXPECT_EQ(s->stats.records_skipped, 1u);
  EXPECT_EQ(p->stats.records_skipped, 1u);
  EXPECT_GT(s->stats.records_salvaged, 0u);
  EXPECT_EQ(s->stats.records_salvaged, p->stats.records_salvaged);
  EXPECT_EQ(s->stats.warnings, p->stats.warnings);
  EXPECT_EQ(serial->registry()->num_quarantined(), 0u);
  EXPECT_EQ(parallel->registry()->num_quarantined(), 0u);
}

TEST(ParallelMount, FourWorkersHalveSimulatedMountTime) {
  ScopedRepo repo("pmount_speedup", SixtyFourFileRepo());
  auto parallel = OpenWithThreads(repo.root(), 4);
  parallel->FlushBuffers();  // Open()'s scan left the files resident
  auto r = parallel->Query(kCountAll);  // cold: all 64 files mount
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const TwoStageStats& ts = r->stats.two_stage;
  EXPECT_EQ(ts.workers, 4u);
  EXPECT_EQ(ts.mount_tasks, 64u);
  ASSERT_GT(ts.parallel_sim_nanos, 0u);
  ASSERT_GT(ts.serial_sim_nanos, 0u);
  // 64 similar tasks on 4 lanes: the critical path must be at least 2x
  // shorter than the serial sum (greedy scheduling gets close to 4x here).
  EXPECT_GE(ts.serial_sim_nanos, 2 * ts.parallel_sim_nanos);

  // The speedup shows up in the reported query time too: a serial run over
  // the same repository stalls longer on the simulated medium.
  auto serial = OpenWithThreads(repo.root(), 1);
  serial->FlushBuffers();
  auto sr = serial->Query(kCountAll);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();
  EXPECT_EQ(CanonicalRows(*sr->table), CanonicalRows(*r->table));
  EXPECT_GT(sr->stats.sim_io_nanos, r->stats.sim_io_nanos);
}

TEST(ParallelMount, SimulatedTimeIsDeterministicAcrossRuns) {
  ScopedRepo repo("pmount_determinism", SixtyFourFileRepo());
  DatabaseOptions opts;
  opts.disk.faults.seed = 13;
  opts.disk.faults.transient_error_rate = 0.05;
  opts.disk.faults.latency_spike_rate = 0.20;
  opts.disk.faults.latency_spike_millis = 2.0;

  auto run = [&] {
    auto db = OpenWithThreads(repo.root(), 4, opts);
    db->FlushBuffers();
    auto r = db->Query(kCountAll);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::make_pair(r->stats.two_stage.parallel_sim_nanos,
                          r->stats.two_stage.serial_sim_nanos);
  };
  // Real thread interleaving differs between runs; the simulated critical
  // path may not.
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.first, 0u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dex
