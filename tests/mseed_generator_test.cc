#include "mseed/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/time_utils.h"
#include "core/format_adapter.h"
#include "io/file_io.h"
#include "mseed/scanner.h"

namespace dex::mseed {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/dex_generator_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  static GeneratorOptions SmallOptions() {
    GeneratorOptions gen;
    gen.seed = 5;
    gen.num_stations = 2;
    gen.channels_per_station = 2;
    gen.num_days = 2;
    gen.records_per_file = 3;
    gen.sample_rate_hz = 0.01;
    gen.gap_probability = 0.0;
    return gen;
  }

  std::string dir_;
};

TEST_F(GeneratorTest, ProducesExpectedFileCount) {
  auto repo = GenerateRepository(dir_, SmallOptions());
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_EQ(repo->files.size(), 2u * 2u * 2u);
  EXPECT_GT(repo->total_bytes, 0u);
  EXPECT_EQ(repo->total_records, 8u * 3u);
}

TEST_F(GeneratorTest, StationAndChannelCodesIncludePaperValues) {
  const auto stations = GeneratorStationCodes(3);
  ASSERT_EQ(stations.size(), 3u);
  EXPECT_EQ(stations[0], "ISK");  // the paper's Query 1 station
  const auto channels = GeneratorChannelCodes(3);
  EXPECT_EQ(channels[0], "BHE");  // the paper's Query 1 channel
  // Codes beyond the builtin list are synthesized.
  EXPECT_EQ(GeneratorStationCodes(20)[17], "S017");
  EXPECT_EQ(GeneratorChannelCodes(15)[13], "C13Z");
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateRepository(dir_ + "/a", SmallOptions());
  auto b = GenerateRepository(dir_ + "/b", SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_bytes, b->total_bytes);
  EXPECT_EQ(a->total_samples, b->total_samples);
  std::string img_a, img_b;
  ASSERT_TRUE(ReadFileToString(a->files[0], &img_a).ok());
  ASSERT_TRUE(ReadFileToString(b->files[0], &img_b).ok());
  EXPECT_EQ(img_a, img_b);
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions other = SmallOptions();
  other.seed = 6;
  auto a = GenerateRepository(dir_ + "/a", SmallOptions());
  auto b = GenerateRepository(dir_ + "/b", other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::string img_a, img_b;
  ASSERT_TRUE(ReadFileToString(a->files[0], &img_a).ok());
  ASSERT_TRUE(ReadFileToString(b->files[0], &img_b).ok());
  EXPECT_NE(img_a, img_b);
}

TEST_F(GeneratorTest, RecordsPartitionTheDay) {
  auto repo = GenerateRepository(dir_, SmallOptions());
  ASSERT_TRUE(repo.ok());
  auto scan = MseedAdapter().ScanRepository(dir_);
  ASSERT_TRUE(scan.ok());
  // Every record starts at day_start + k * (day / records_per_file).
  const int64_t span = kMillisPerDay / 3;
  for (const RecordMeta& r : scan->records) {
    EXPECT_EQ((r.start_time_ms % kMillisPerDay) % span, 0)
        << "record at " << r.start_time_ms;
    EXPECT_GT(r.num_samples, 0u);
    EXPECT_GE(r.end_time_ms, r.start_time_ms);
  }
}

TEST_F(GeneratorTest, GapsReduceRecordCount) {
  GeneratorOptions gappy = SmallOptions();
  gappy.gap_probability = 0.5;
  gappy.num_days = 4;
  auto repo = GenerateRepository(dir_, gappy);
  ASSERT_TRUE(repo.ok());
  const uint64_t max_records = 2u * 2u * 4u * 3u;
  EXPECT_LT(repo->total_records, max_records);
  EXPECT_GT(repo->total_records, 0u);
}

TEST_F(GeneratorTest, ScannerAgreesWithGenerator) {
  auto repo = GenerateRepository(dir_, SmallOptions());
  ASSERT_TRUE(repo.ok());
  auto scan = MseedAdapter().ScanRepository(dir_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->files.size(), repo->files.size());
  EXPECT_EQ(scan->records.size(), repo->total_records);
  EXPECT_EQ(scan->total_bytes, repo->total_bytes);
  uint64_t samples = 0;
  for (const RecordMeta& r : scan->records) samples += r.num_samples;
  EXPECT_EQ(samples, repo->total_samples);
  // Station codes flow through to file-level metadata.
  std::set<std::string> stations;
  for (const FileMeta& f : scan->files) stations.insert(f.station);
  EXPECT_EQ(stations.size(), 2u);
  EXPECT_TRUE(stations.count("ISK"));
}

TEST_F(GeneratorTest, InvalidOptionsRejected) {
  GeneratorOptions bad = SmallOptions();
  bad.num_stations = 0;
  EXPECT_TRUE(GenerateRepository(dir_, bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.sample_rate_hz = 0.0;
  EXPECT_TRUE(GenerateRepository(dir_, bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.sample_rate_hz = 1e-9;  // yields zero samples per record
  EXPECT_TRUE(GenerateRepository(dir_, bad).status().IsInvalidArgument());
}

TEST_F(GeneratorTest, WaveformSynthesisDeterministic) {
  const auto a = SynthesizeWaveform(9, 500, true);
  const auto b = SynthesizeWaveform(9, 500, true);
  EXPECT_EQ(a, b);
  const auto c = SynthesizeWaveform(10, 500, true);
  EXPECT_NE(a, c);
}

TEST_F(GeneratorTest, EventsRaiseAmplitude) {
  const auto calm = SynthesizeWaveform(11, 2000, false);
  const auto event = SynthesizeWaveform(11, 2000, true);
  auto peak = [](const std::vector<int32_t>& v) {
    int32_t m = 0;
    for (int32_t s : v) m = std::max(m, std::abs(s));
    return m;
  };
  EXPECT_GT(peak(event), peak(calm) * 5);
}

}  // namespace
}  // namespace dex::mseed
