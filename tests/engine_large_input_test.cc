// Multi-batch executor behaviour: everything here uses tables bigger than
// one 4096-row batch, exercising the chunked paths of every operator.

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/batch.h"
#include "engine/executor.h"
#include "io/sim_disk.h"

namespace dex {
namespace {

constexpr size_t kRows = 3 * kBatchSize + 123;  // deliberately non-aligned

class LargeInputTest : public ::testing::Test {
 protected:
  LargeInputTest() : disk_(), catalog_(&disk_) {
    auto schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "D"},
                {"n", DataType::kInt64, "D"},
                {"v", DataType::kDouble, "D"}}));
    auto t = std::make_shared<Table>("D", schema);
    Column* uri = t->mutable_column(0);
    Column* n = t->mutable_column(1);
    Column* v = t->mutable_column(2);
    Random rng(41);
    for (size_t i = 0; i < kRows; ++i) {
      uri->AppendString("file_" + std::to_string(i % 17));
      n->AppendInt64(static_cast<int64_t>(i));
      v->AppendDouble(rng.NextDouble() * 100.0);
    }
    EXPECT_TRUE(t->CommitAppendedRows(kRows).ok());
    EXPECT_TRUE(catalog_.AddTable(t, TableKind::kActual).ok());

    auto f_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "F"}}));
    auto f = std::make_shared<Table>("F", f_schema);
    for (int i = 0; i < 17; i += 2) {  // every other file
      EXPECT_TRUE(
          f->AppendRow({Value::String("file_" + std::to_string(i))}).ok());
    }
    EXPECT_TRUE(catalog_.AddTable(f, TableKind::kMetadata).ok());
  }

  Result<TablePtr> Run(PlanPtr plan) {
    DEX_RETURN_NOT_OK(AnalyzePlan(plan, catalog_));
    ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.charge_io = false;
    return ExecutePlan(plan, &ctx);
  }

  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(LargeInputTest, ScanPreservesEveryRowAcrossBatches) {
  auto r = Run(MakeScan("D"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), kRows);
  // Spot-check batch boundaries.
  for (size_t i : {kBatchSize - 1, kBatchSize, 2 * kBatchSize, kRows - 1}) {
    EXPECT_EQ((*r)->GetValue(i, 1).int64(), static_cast<int64_t>(i));
  }
}

TEST_F(LargeInputTest, FilterCountsMatchPredicateExactly) {
  auto r = Run(MakeFilter(
      Expr::Compare(CompareOp::kLt, Expr::ColumnRef("n"),
                    Expr::Lit(Value::Int64(static_cast<int64_t>(kBatchSize + 5)))),
      MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), kBatchSize + 5);
}

TEST_F(LargeInputTest, JoinAcrossBatchesSelectsHalfTheFiles) {
  auto r = Run(MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("D.uri"),
                    Expr::ColumnRef("F.uri")),
      MakeScan("D"), MakeScan("F")));
  ASSERT_TRUE(r.ok());
  // Files 0,2,...,16 (9 of 17). Count rows with i % 17 in that set.
  size_t expected = 0;
  for (size_t i = 0; i < kRows; ++i) {
    if ((i % 17) % 2 == 0) ++expected;
  }
  EXPECT_EQ((*r)->num_rows(), expected);
}

TEST_F(LargeInputTest, AggregateSeesEveryBatch) {
  auto r = Run(MakeAggregate(
      {}, {{AggFunc::kCount, nullptr, "n"},
           {AggFunc::kSum, Expr::ColumnRef("n"), "s"}},
      MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).int64(), static_cast<int64_t>(kRows));
  EXPECT_EQ((*r)->GetValue(0, 1).int64(),
            static_cast<int64_t>(kRows) * (static_cast<int64_t>(kRows) - 1) / 2);
}

TEST_F(LargeInputTest, GroupByAcrossBatches) {
  auto r = Run(MakeAggregate({Expr::ColumnRef("uri")},
                             {{AggFunc::kCount, nullptr, "n"}}, MakeScan("D")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 17u);
  int64_t total = 0;
  for (size_t g = 0; g < (*r)->num_rows(); ++g) {
    total += (*r)->GetValue(g, 1).int64();
  }
  EXPECT_EQ(total, static_cast<int64_t>(kRows));
}

TEST_F(LargeInputTest, LimitCutsInsideABatch) {
  for (size_t limit : {kBatchSize - 1, kBatchSize, kBatchSize + 1, kRows + 10}) {
    auto r = Run(MakeLimit(static_cast<int64_t>(limit), MakeScan("D")));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->num_rows(), std::min(limit, kRows));
  }
}

TEST_F(LargeInputTest, SortIsGloballyOrderedAcrossBatches) {
  auto r = Run(MakeSort({{Expr::ColumnRef("v"), false}}, MakeScan("D")));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), kRows);
  for (size_t i = 1; i < kRows; i += 997) {
    EXPECT_GE((*r)->GetValue(i - 1, 2).dbl(), (*r)->GetValue(i, 2).dbl());
  }
}

TEST_F(LargeInputTest, UnionDoublesEverything) {
  auto r = Run(MakeUnion({MakeScan("D"), MakeScan("D")}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 2 * kRows);
}

TEST_F(LargeInputTest, StringDictionarySurvivesChunkedGathers) {
  // Filter + project over the dictionary column across batches: values must
  // stay intact (exercises dict sharing / re-interning in gathers).
  auto r = Run(MakeProject(
      {Expr::ColumnRef("uri")}, {"uri"},
      MakeFilter(Expr::Compare(CompareOp::kEq, Expr::ColumnRef("uri"),
                               Expr::Lit(Value::String("file_3"))),
                 MakeScan("D"))));
  ASSERT_TRUE(r.ok());
  size_t expected = 0;
  for (size_t i = 0; i < kRows; ++i) {
    if (i % 17 == 3) ++expected;
  }
  ASSERT_EQ((*r)->num_rows(), expected);
  for (size_t i = 0; i < (*r)->num_rows(); i += 100) {
    EXPECT_EQ((*r)->GetValue(i, 0).str(), "file_3");
  }
}

}  // namespace
}  // namespace dex
