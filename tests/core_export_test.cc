#include "core/export.h"

#include <gtest/gtest.h>

#include "common/string_utils.h"
#include "core/database.h"
#include "io/file_io.h"
#include "test_util.h"

namespace dex {
namespace {

TablePtr MakeTable() {
  auto schema = std::make_shared<Schema>(
      Schema({{"station", DataType::kString, "F"},
              {"t", DataType::kTimestamp, "F"},
              {"n", DataType::kInt64, "F"},
              {"v", DataType::kDouble, "F"},
              {"flag", DataType::kBool, "F"}}));
  auto t = std::make_shared<Table>("F", schema);
  EXPECT_TRUE(t->AppendRow({Value::String("ISK"), Value::Timestamp(0),
                            Value::Int64(-3), Value::Double(2.5),
                            Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(t->AppendRow({Value::String("A,\"B\""), Value::Timestamp(1000),
                            Value::Int64(7), Value::Double(0.125),
                            Value::Bool(false)})
                  .ok());
  return t;
}

TEST(ExportTest, HeaderAndRows) {
  const std::string csv = TableToCsv(*MakeTable());
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "F.station,F.t,F.n,F.v,F.flag");
  EXPECT_EQ(lines[1], "ISK,1970-01-01T00:00:00.000,-3,2.5,true");
  // Embedded comma and quotes: field quoted, quotes doubled.
  EXPECT_EQ(lines[2], "\"A,\"\"B\"\"\",1970-01-01T00:00:01.000,7,0.125,false");
}

TEST(ExportTest, EmptyTableHasHeaderOnly) {
  auto schema = std::make_shared<Schema>(
      Schema({{"x", DataType::kInt64, ""}}));
  Table t("T", schema);
  EXPECT_EQ(TableToCsv(t), "x\n");
}

TEST(ExportTest, DoublePrecisionRoundtrips) {
  auto schema = std::make_shared<Schema>(
      Schema({{"v", DataType::kDouble, ""}}));
  auto t = std::make_shared<Table>("T", schema);
  const double exact = 0.1 + 0.2;  // 0.30000000000000004
  ASSERT_TRUE(t->AppendRow({Value::Double(exact)}).ok());
  const std::string csv = TableToCsv(*t);
  const auto lines = Split(csv, '\n');
  EXPECT_EQ(std::stod(lines[1]), exact);
}

TEST(ExportTest, WritesFile) {
  const std::string path = "/tmp/dex_export_test/out.csv";
  (void)RemoveDirRecursive("/tmp/dex_export_test");
  ASSERT_TRUE(ExportTableCsv(*MakeTable(), path).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, TableToCsv(*MakeTable()));
  (void)RemoveDirRecursive("/tmp/dex_export_test");
}

TEST(ExportTest, QueryResultExportsEndToEnd) {
  testing::ScopedRepo repo("export_e2e", testing::TinyRepoOptions());
  auto db = Database::Open(repo.root(), {});
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Query(
      "SELECT F.station, COUNT(*) AS n FROM F GROUP BY F.station "
      "ORDER BY F.station");
  ASSERT_TRUE(r.ok());
  const std::string csv = TableToCsv(*r->table);
  const auto lines = Split(csv, '\n');
  ASSERT_EQ(lines.size(), 4u);  // header + 2 stations + trailing empty
  EXPECT_EQ(lines[0], "station,n");
  EXPECT_EQ(lines[1], "ANK,4");
  EXPECT_EQ(lines[2], "ISK,4");
}

}  // namespace
}  // namespace dex
