#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "test_util.h"

namespace dex {
namespace {

using dex::testing::CanonicalRows;
using dex::testing::ScopedRepo;
using dex::testing::TinyRepoOptions;

const std::string kColdScan =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";

/// Opens the repo fresh, runs the cold scan, and returns the
/// order-insensitive result rows plus the simulated I/O charged.
std::pair<std::vector<std::string>, uint64_t> RunColdScan(
    const std::string& root, size_t workers) {
  DatabaseOptions options;
  options.two_stage.num_threads = workers;
  auto db = Database::Open(root, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  (*db)->FlushBuffers();  // metadata scan left the files resident
  auto result = (*db)->Query(kColdScan);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {CanonicalRows(*result->table), result->stats.sim_io_nanos};
}

/// Drained span stream reduced to what must be deterministic: non-instant
/// spans of the query/mount categories, as "name" or "name:uri" lines.
std::vector<std::string> LifecycleSignature(const std::vector<obs::Span>& spans) {
  std::vector<std::string> out;
  for (const obs::Span& s : spans) {
    if (s.instant) continue;
    if (s.category != std::string("query") && s.category != std::string("mount")) {
      continue;
    }
    std::string line = s.name;
    for (const obs::SpanArg& arg : s.args) {
      if (arg.key == "uri") line += ":" + arg.value;
    }
    out.push_back(std::move(line));
  }
  return out;
}

class TraceDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Tracer::Global().set_enabled(false);
    obs::Tracer::Global().Clear();
  }
};

TEST_F(TraceDeterminismTest, ResultsAndSimTimeIdenticalWithTracingOnAndOff) {
  ScopedRepo repo("trace_det_onoff", TinyRepoOptions());
  for (size_t workers : {size_t{1}, size_t{8}}) {
    obs::Tracer::Global().set_enabled(false);
    obs::Tracer::Global().Clear();
    const auto off = RunColdScan(repo.root(), workers);

    obs::Tracer::Global().set_enabled(true);
    const auto on = RunColdScan(repo.root(), workers);
    obs::Tracer::Global().set_enabled(false);
    obs::Tracer::Global().Clear();

    EXPECT_EQ(off.first, on.first) << "workers=" << workers;
    EXPECT_EQ(off.second, on.second)
        << "sim_io_nanos must be bit-identical with tracing on, workers="
        << workers;
    EXPECT_GT(off.second, 0u);
  }
}

TEST_F(TraceDeterminismTest, SimTimeStaysDeterministicAcrossRunsWhileTraced) {
  // Parallel mounting legitimately *shrinks* sim I/O (the critical path
  // replaces the serial sum); what tracing must not break is that results
  // match across worker counts and that the accounting is reproducible.
  ScopedRepo repo("trace_det_workers", TinyRepoOptions());
  obs::Tracer::Global().set_enabled(true);
  const auto one = RunColdScan(repo.root(), 1);
  const auto eight_a = RunColdScan(repo.root(), 8);
  const auto eight_b = RunColdScan(repo.root(), 8);
  EXPECT_EQ(one.first, eight_a.first);
  EXPECT_EQ(eight_a.first, eight_b.first);
  EXPECT_EQ(eight_a.second, eight_b.second)
      << "deterministic sim accounting must survive tracing";
  EXPECT_LT(eight_a.second, one.second)
      << "8 workers should beat the serial critical path on 8 uniform files";
}

TEST_F(TraceDeterminismTest, GoldenLifecycleSpanSequenceAtOneWorker) {
  ScopedRepo repo("trace_golden", TinyRepoOptions());
  DatabaseOptions options;
  options.two_stage.num_threads = 1;
  auto db = Database::Open(repo.root(), options);
  DEX_ASSERT_OK(db);
  (*db)->FlushBuffers();

  obs::Tracer::Global().set_enabled(true);
  obs::Tracer::Global().Clear();  // drop the Open() spans, keep the query's
  auto result = (*db)->Query(kColdScan);
  DEX_ASSERT_OK(result);
  const auto spans = obs::Tracer::Global().Drain();
  obs::Tracer::Global().set_enabled(false);

  std::vector<std::string> names;
  for (const std::string& line : LifecycleSignature(spans)) {
    names.push_back(line.substr(0, line.find(':')));
  }
  // The golden single-worker lifecycle: the query umbrella, the three
  // planning phases, then one inline mount per file (8 files) inside
  // stage 2. Drain order is open order, so the umbrella sorts first.
  const std::vector<std::string> expected = {
      "query", "parse_bind", "optimize", "stage1", "rewrite", "stage2",
      "mount", "mount", "mount", "mount", "mount", "mount", "mount", "mount"};
  EXPECT_EQ(names, expected);

  // Every mount span names its file, and stage-1/rewrite/stage-2 spans are
  // parented under the query span.
  uint64_t query_id = 0;
  for (const obs::Span& s : spans) {
    if (s.name == "query") query_id = s.id;
  }
  ASSERT_NE(query_id, 0u);
  size_t mounts_with_uri = 0;
  for (const obs::Span& s : spans) {
    if (s.instant) continue;
    if (s.name == "mount") {
      for (const obs::SpanArg& arg : s.args) {
        if (arg.key == "uri" && !arg.value.empty()) ++mounts_with_uri;
      }
    }
    if (s.name == "stage1" || s.name == "rewrite" || s.name == "stage2") {
      EXPECT_EQ(s.parent_id, query_id) << s.name;
    }
  }
  EXPECT_EQ(mounts_with_uri, 8u);
}

TEST_F(TraceDeterminismTest, ParallelTraceIsReproducibleRunToRun) {
  ScopedRepo repo("trace_det_rerun", TinyRepoOptions());
  std::vector<std::string> first;
  std::vector<std::string> second;
  for (int run = 0; run < 2; ++run) {
    DatabaseOptions options;
    options.two_stage.num_threads = 8;
    auto db = Database::Open(repo.root(), options);
    DEX_ASSERT_OK(db);
    (*db)->FlushBuffers();
    obs::Tracer::Global().set_enabled(true);
    obs::Tracer::Global().Clear();
    auto result = (*db)->Query(kColdScan);
    DEX_ASSERT_OK(result);
    auto sig = LifecycleSignature(obs::Tracer::Global().Drain());
    obs::Tracer::Global().set_enabled(false);
    (run == 0 ? first : second) = std::move(sig);
  }
  ASSERT_FALSE(first.empty());
  // Even with 8 OS threads racing, the drained stream is identical run to
  // run: task roots carry spawn-time order keys, not completion order.
  EXPECT_EQ(first, second);

  // Both task wrappers and per-file mounts appear, once per file.
  size_t mount_tasks = 0;
  size_t mounts = 0;
  for (const std::string& line : first) {
    if (line.rfind("mount_task", 0) == 0) ++mount_tasks;
    if (line.rfind("mount:", 0) == 0) ++mounts;
  }
  EXPECT_EQ(mount_tasks, 8u);
  EXPECT_EQ(mounts, 8u);
}

}  // namespace
}  // namespace dex
