#include "io/sim_disk.h"

#include <gtest/gtest.h>

namespace dex {
namespace {

SimDisk::Options SmallDisk() {
  SimDisk::Options o;
  o.page_bytes = 1024;
  o.buffer_pool_bytes = 8 * 1024;  // 8 pages
  o.seek_millis = 10.0;
  o.read_mb_per_sec = 100.0;
  o.write_mb_per_sec = 100.0;
  return o;
}

TEST(SimDiskTest, RegisterAndQuery) {
  SimDisk disk(SmallDisk());
  const ObjectId id = disk.Register("table:F", 4096);
  ASSERT_NE(id, kInvalidObjectId);
  ASSERT_TRUE(disk.ObjectSize(id).ok());
  EXPECT_EQ(*disk.ObjectSize(id), 4096u);
  EXPECT_EQ(*disk.ObjectName(id), "table:F");
}

TEST(SimDiskTest, UnknownObjectRejected) {
  SimDisk disk(SmallDisk());
  EXPECT_TRUE(disk.Read(99, 0, 1).IsNotFound());
  EXPECT_TRUE(disk.Read(kInvalidObjectId, 0, 1).IsNotFound());
  EXPECT_FALSE(disk.ObjectSize(42).ok());
}

TEST(SimDiskTest, ReadPastEndRejected) {
  SimDisk disk(SmallDisk());
  const ObjectId id = disk.Register("x", 100);
  EXPECT_TRUE(disk.Read(id, 50, 51).IsInvalidArgument());
  EXPECT_TRUE(disk.Read(id, 0, 100).ok());
}

TEST(SimDiskTest, ColdReadChargesSeekAndTransfer) {
  SimDisk disk(SmallDisk());
  const ObjectId id = disk.Register("x", 4096);
  ASSERT_TRUE(disk.Read(id, 0, 4096).ok());
  const IoStats& s = disk.stats();
  EXPECT_EQ(s.seeks, 1u);                       // one contiguous miss run
  EXPECT_EQ(s.disk_bytes_read, 4096u);          // 4 pages
  // 10ms seek + 4096B / 100MB/s ≈ 10.04 ms.
  EXPECT_GT(s.sim_nanos, 10000000u);
  EXPECT_LT(s.sim_nanos, 11000000u);
}

TEST(SimDiskTest, HotReadIsFree) {
  SimDisk disk(SmallDisk());
  const ObjectId id = disk.Register("x", 4096);
  ASSERT_TRUE(disk.Read(id, 0, 4096).ok());
  const uint64_t cold_nanos = disk.stats().sim_nanos;
  ASSERT_TRUE(disk.Read(id, 0, 4096).ok());
  EXPECT_EQ(disk.stats().sim_nanos, cold_nanos);  // fully cached
  EXPECT_GT(disk.stats().cached_bytes_read, 0u);
}

TEST(SimDiskTest, FlushAllMakesReadsColdAgain) {
  SimDisk disk(SmallDisk());
  const ObjectId id = disk.Register("x", 2048);
  ASSERT_TRUE(disk.Read(id, 0, 2048).ok());
  const uint64_t after_cold = disk.stats().sim_nanos;
  disk.FlushAll();
  ASSERT_TRUE(disk.Read(id, 0, 2048).ok());
  EXPECT_GT(disk.stats().sim_nanos, after_cold);  // charged again
}

TEST(SimDiskTest, WriteMakesPagesResident) {
  SimDisk disk(SmallDisk());
  const ObjectId id = disk.Register("x", 0);
  ASSERT_TRUE(disk.Write(id, 0, 2048).ok());
  EXPECT_EQ(*disk.ObjectSize(id), 2048u);  // write extends
  const uint64_t nanos_after_write = disk.stats().sim_nanos;
  ASSERT_TRUE(disk.Read(id, 0, 2048).ok());
  EXPECT_EQ(disk.stats().sim_nanos, nanos_after_write);  // write-back cached
}

TEST(SimDiskTest, LruEvictsLeastRecentPages) {
  SimDisk disk(SmallDisk());  // pool holds 8 pages
  const ObjectId a = disk.Register("a", 8 * 1024);
  const ObjectId b = disk.Register("b", 8 * 1024);
  ASSERT_TRUE(disk.Read(a, 0, 8 * 1024).ok());   // fills the pool with a
  ASSERT_TRUE(disk.Read(b, 0, 8 * 1024).ok());   // evicts all of a
  ASSERT_TRUE(disk.ResidentFraction(a).ok());
  EXPECT_EQ(*disk.ResidentFraction(a), 0.0);
  EXPECT_EQ(*disk.ResidentFraction(b), 1.0);
  // Touching a again now recharges.
  const uint64_t t = disk.stats().sim_nanos;
  ASSERT_TRUE(disk.Read(a, 0, 1024).ok());
  EXPECT_GT(disk.stats().sim_nanos, t);
}

TEST(SimDiskTest, PartialResidency) {
  SimDisk disk(SmallDisk());
  const ObjectId a = disk.Register("a", 4 * 1024);
  ASSERT_TRUE(disk.Read(a, 0, 1024).ok());  // 1 of 4 pages
  EXPECT_DOUBLE_EQ(*disk.ResidentFraction(a), 0.25);
}

TEST(SimDiskTest, SeeksCountMissRuns) {
  SimDisk disk(SmallDisk());
  const ObjectId a = disk.Register("a", 8 * 1024);
  // Fault in pages 0 and 4: two separate runs.
  ASSERT_TRUE(disk.Read(a, 0, 512).ok());
  ASSERT_TRUE(disk.Read(a, 4 * 1024, 512).ok());
  EXPECT_EQ(disk.stats().seeks, 2u);
  // Reading the whole object now: pages 1-3 and 5-7 are two more runs.
  ASSERT_TRUE(disk.Read(a, 0, 8 * 1024).ok());
  EXPECT_EQ(disk.stats().seeks, 4u);
}

TEST(SimDiskTest, ResizeShrinkDropsPages) {
  SimDisk disk(SmallDisk());
  const ObjectId a = disk.Register("a", 4 * 1024);
  ASSERT_TRUE(disk.Read(a, 0, 4 * 1024).ok());
  ASSERT_TRUE(disk.Resize(a, 1024).ok());
  EXPECT_EQ(*disk.ObjectSize(a), 1024u);
  EXPECT_DOUBLE_EQ(*disk.ResidentFraction(a), 1.0);  // page 0 still cached
  EXPECT_EQ(disk.buffer_pool_used_bytes(), 1024u);
}

TEST(SimDiskTest, UnregisterFreesPoolSpace) {
  SimDisk disk(SmallDisk());
  const ObjectId a = disk.Register("a", 4 * 1024);
  ASSERT_TRUE(disk.Read(a, 0, 4 * 1024).ok());
  EXPECT_GT(disk.buffer_pool_used_bytes(), 0u);
  ASSERT_TRUE(disk.Unregister(a).ok());
  EXPECT_EQ(disk.buffer_pool_used_bytes(), 0u);
  EXPECT_TRUE(disk.Read(a, 0, 1).IsNotFound());
}

TEST(SimDiskTest, PrefaultMakesHotWithoutCharging) {
  SimDisk disk(SmallDisk());
  const ObjectId a = disk.Register("a", 2048);
  ASSERT_TRUE(disk.Prefault(a).ok());
  EXPECT_EQ(disk.stats().sim_nanos, 0u);
  ASSERT_TRUE(disk.Read(a, 0, 2048).ok());
  EXPECT_EQ(disk.stats().sim_nanos, 0u);
}

TEST(SimDiskTest, ZeroLengthReadIsNoop) {
  SimDisk disk(SmallDisk());
  const ObjectId a = disk.Register("a", 1024);
  ASSERT_TRUE(disk.Read(a, 0, 0).ok());
  EXPECT_EQ(disk.stats().sim_nanos, 0u);
}

TEST(IoStatsTest, SinceComputesDifference) {
  IoStats a;
  a.disk_bytes_read = 100;
  a.sim_nanos = 10;
  IoStats b = a;
  b.disk_bytes_read = 250;
  b.sim_nanos = 35;
  const IoStats d = b.Since(a);
  EXPECT_EQ(d.disk_bytes_read, 150u);
  EXPECT_EQ(d.sim_nanos, 25u);
}

}  // namespace
}  // namespace dex
