// A real seismology workload on top of the public API: STA/LTA event
// detection (the short-term-average / long-term-average trigger that
// motivates the paper's Query 1 — "the short term averaging task performed
// by seismologists while hunting for interesting seismic events").
//
// The pipeline exercises every layer of the system:
//   1. derived metadata (collected as a side effect of a single survey
//      query) ranks records by peak amplitude — no manual pre-processing;
//   2. only candidate records' files are mounted, via the paper's two-stage
//      execution, to retrieve their waveforms;
//   3. a classic recursive STA/LTA trigger runs over each waveform and
//      reports trigger windows.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/time_utils.h"
#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace {

constexpr const char* kRepoDir = "/tmp/dex_event_detection_repo";

struct Trigger {
  int64_t onset_ms;
  double peak_ratio;
};

/// Recursive STA/LTA with exponential moving averages; triggers when the
/// ratio crosses `on`, releases below `off`.
std::vector<Trigger> StaLta(const std::vector<int64_t>& times,
                            const std::vector<double>& values, double sta_tau,
                            double lta_tau, double on, double off) {
  std::vector<Trigger> triggers;
  double sta = 1.0, lta = 1.0;
  bool armed = false;
  Trigger current{0, 0};
  for (size_t i = 0; i < values.size(); ++i) {
    const double energy = values[i] * values[i];
    sta += (energy - sta) / sta_tau;
    lta += (energy - lta) / lta_tau;
    const double ratio = lta > 1e-9 ? sta / lta : 0.0;
    if (!armed && ratio > on) {
      armed = true;
      current = {times[i], ratio};
    } else if (armed) {
      current.peak_ratio = std::max(current.peak_ratio, ratio);
      if (ratio < off) {
        triggers.push_back(current);
        armed = false;
      }
    }
  }
  if (armed) triggers.push_back(current);
  return triggers;
}

}  // namespace

int main() {
  dex::mseed::GeneratorOptions gen;
  gen.num_stations = 4;
  gen.channels_per_station = 3;
  gen.num_days = 6;
  gen.sample_rate_hz = 0.5;
  gen.event_probability = 0.2;
  gen.encoding = 2;  // Steim2, like modern archives
  (void)dex::RemoveDirRecursive(kRepoDir);
  if (!dex::mseed::GenerateRepository(kRepoDir, gen).ok()) return 1;

  dex::DatabaseOptions options;
  options.collect_derived_metadata = true;
  options.cache.policy = dex::CachePolicy::kLru;
  options.cache.capacity_bytes = 128ull << 20;
  auto db_or = dex::Database::Open(kRepoDir, options);
  if (!db_or.ok()) return 1;
  auto& db = *db_or;

  // Phase 1: survey one station to seed derived metadata (mounts happen once).
  std::printf("surveying station ISK (seeds derived metadata)...\n");
  auto survey = db->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK';");
  if (!survey.ok()) return 1;
  std::printf("  %llu samples decoded across %llu files\n\n",
              static_cast<unsigned long long>(survey->stats.mount.samples_decoded),
              static_cast<unsigned long long>(survey->stats.mount.mounts));

  // Phase 2: candidate records by peak amplitude — metadata only.
  auto candidates = db->Query(
      "SELECT DM.uri, DM.record_id, DM.max_value FROM DM "
      "WHERE DM.max_value > 1500 ORDER BY DM.max_value DESC LIMIT 4;");
  if (!candidates.ok()) {
    std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
    return 1;
  }
  std::printf("top candidate records (from derived metadata, 0 mounts):\n%s\n",
              candidates->table->ToString().c_str());

  // Phase 3: retrieve each candidate's waveform (cache-scans — the survey
  // already ingested these files) and run the STA/LTA trigger.
  for (size_t i = 0; i < candidates->table->num_rows(); ++i) {
    const std::string uri = candidates->table->GetValue(i, 0).str();
    const int64_t record = candidates->table->GetValue(i, 1).int64();
    auto waveform = db->Query(
        "SELECT D.sample_time, D.sample_value FROM R "
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
        "WHERE R.uri = '" + uri + "' AND R.record_id = " +
        std::to_string(record) + " ORDER BY D.sample_time;");
    if (!waveform.ok()) {
      std::fprintf(stderr, "%s\n", waveform.status().ToString().c_str());
      return 1;
    }
    std::vector<int64_t> times;
    std::vector<double> values;
    for (size_t r = 0; r < waveform->table->num_rows(); ++r) {
      times.push_back(waveform->table->GetValue(r, 0).int64());
      values.push_back(waveform->table->GetValue(r, 1).dbl());
    }
    const auto triggers = StaLta(times, values, 10.0, 200.0, 4.0, 1.5);
    const std::string file =
        uri.substr(uri.rfind('/') + 1);
    std::printf("%s record %lld: %zu rows retrieved (%llu mounts), %zu trigger(s)\n",
                file.c_str(), static_cast<long long>(record), values.size(),
                static_cast<unsigned long long>(waveform->stats.mount.mounts),
                triggers.size());
    for (const Trigger& t : triggers) {
      std::printf("    event onset %s, peak STA/LTA ratio %.1f\n",
                  dex::FormatIso8601(t.onset_ms).c_str(), t.peak_ratio);
    }
  }
  std::printf("\ntotal decode work this session: survey only — detection ran "
              "on cached and metadata-pruned data.\n");
  return 0;
}
