// Interactive query execution at the stage-1/stage-2 breakpoint (paper §5):
//
//   "why can't he have a way to interfere with his own query's destiny
//    (i.e. execution), when he sees that his query is running longer than
//    he expected?"
//
// Three scenarios:
//   1. A well-phrased query sails through the breakpoint.
//   2. A careless full-repository retrieval is refused by a budget policy
//      before a single file is mounted.
//   3. Multi-stage execution: ingestion proceeds in batches with a progress
//      breakpoint after each, and the explorer bails out midway.

#include <cstdio>

#include "common/string_utils.h"
#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace {

constexpr const char* kRepoDir = "/tmp/dex_breakpoint_repo";

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void DescribeBreakpoint(const dex::BreakpointInfo& info) {
  std::printf("  breakpoint: %zu files of interest (%zu cached, %zu pruned)\n",
              info.files_of_interest.size(),
              static_cast<size_t>(info.files_cached),
              static_cast<size_t>(info.files_pruned));
  std::printf("  estimated : %s to mount, ~%llu rows to ingest, ~%llu result "
              "rows, ~%.3fs\n",
              dex::FormatBytes(info.bytes_to_mount).c_str(),
              static_cast<unsigned long long>(info.est_rows_to_ingest),
              static_cast<unsigned long long>(info.est_result_rows),
              info.est_stage2_seconds);
}

}  // namespace

int main() {
  dex::mseed::GeneratorOptions gen;
  gen.num_stations = 4;
  gen.channels_per_station = 3;
  gen.num_days = 6;
  gen.sample_rate_hz = 0.5;
  (void)dex::RemoveDirRecursive(kRepoDir);
  if (!dex::mseed::GenerateRepository(kRepoDir, gen).ok()) return 1;

  dex::DatabaseOptions options;
  options.two_stage.mount_batch_size = 3;  // multi-stage ingestion
  auto db_or = dex::Database::Open(kRepoDir, options);
  if (!db_or.ok()) return 1;
  auto& db = *db_or;

  Banner("1. a well-phrased query passes the budget check");
  dex::QueryOptions budget_check;
  budget_check.breakpoint = [](const dex::BreakpointInfo& info) {
    if (info.batch_index == 0) DescribeBreakpoint(info);
    return info.est_result_rows > 1000000 ? dex::BreakpointDecision::kAbort
                                          : dex::BreakpointDecision::kContinue;
  };
  auto ok = db->Query(
      "SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
      "AND R.start_time > '2010-01-02T00:00:00.000' "
      "AND R.start_time < '2010-01-02T23:59:59.999';",
      budget_check);
  if (ok.ok()) {
    std::printf("  -> answered: %s", ok->table->ToString().c_str());
  }

  Banner("2. a non-informative query is refused before ingestion");
  dex::QueryOptions refuse_big;
  refuse_big.breakpoint = [](const dex::BreakpointInfo& info) {
    if (info.batch_index == 0) DescribeBreakpoint(info);
    if (info.est_result_rows > 1000000) {
      std::printf("  -> explorer: that would drown me in rows. Abort.\n");
      return dex::BreakpointDecision::kAbort;
    }
    return dex::BreakpointDecision::kContinue;
  };
  auto refused = db->Query(
      "SELECT D.sample_time, D.sample_value FROM F JOIN D ON F.uri = D.uri;",
      refuse_big);
  std::printf("  query status: %s\n", refused.status().ToString().c_str());

  Banner("3. multi-stage ingestion with a mid-flight change of heart");
  dex::QueryOptions midway_opts;
  midway_opts.breakpoint = [](const dex::BreakpointInfo& info) {
    if (info.batch_index == 0) {
      DescribeBreakpoint(info);
      return dex::BreakpointDecision::kContinue;
    }
    std::printf("  batch %zu/%zu done, %llu rows ingested so far\n",
                info.batch_index, info.num_batches,
                static_cast<unsigned long long>(info.rows_ingested_so_far));
    if (info.batch_index == 2) {
      std::printf("  -> explorer: the first batches look boring. Abort.\n");
      return dex::BreakpointDecision::kAbort;
    }
    return dex::BreakpointDecision::kContinue;
  };
  auto midway = db->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' OR F.station = 'ANK';",
      midway_opts);
  std::printf("  query status: %s\n", midway.status().ToString().c_str());
  return 0;
}
