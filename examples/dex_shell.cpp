// dex_shell — an interactive SQL shell over a scientific file repository.
//
//   dex_shell <repo-dir> [--eager] [--cache=none|lru|all] [--tuple-cache]
//             [--cache-dir=<path>] [--derived] [--snapshot=<path>]
//             [--batch=<n>] [--threads=<n>]
//             [--refresh-threads=<n>] [--timeout=<ms>] [--memlimit=<mb>]
//             [--shards=<n>] [--shard-policy=hash|station]
//             [--max-inflight=<n>] [--queue-depth=<n>]
//             [--priority=background|normal|interactive]
//             [--trace=<file>] [--events-dump=<file>]
//             [--log-level=debug|info|warning|error]
//
// SQL statements execute through the two-stage kernel; dot-commands inspect
// the system:
//   .tables            list tables with row counts and kinds
//   .schema <table>    show a table's columns
//   .explain <sql>     compile-time plans + the Q_f/Q_s decomposition
//   .explain analyze <sql>  execute and annotate every operator with
//                      measured rows / batches / wall time
//   .stats             statistics of the last query (incl. fault counters)
//   .metrics           dump the process-wide metrics registry
//   .open              open/ingestion statistics
//   .cache             cache contents summary (+ durable-tier persist/
//                      recovery counters when --cache-dir is set)
//   .coverage          derive GAPS/OVERLAPS from record metadata
//   .refresh           rescan the repository for new/changed/removed files;
//                      only changed/new headers are parsed (parallel on
//                      --refresh-threads workers), the rest reuse their rows
//   .cold              flush the buffer pool (next query runs cold)
//   .timeout <ms|off>  simulated-time deadline per query; at the deadline
//                      ingestion stops admitting files and the query returns
//                      a deterministic partial result (marked PARTIAL)
//   .memlimit <mb|off> memory budget over mounted data + cache; on pressure
//                      unpinned cache entries are evicted, then files are
//                      skipped (partial result)
//   .sessions          admission-gate state: the open sessions, in-flight /
//                      queued counts, and the cumulative admitted / waited /
//                      shed tallies
//   .shards            one row per virtual shard (with --shards=N): files
//                      owned, health, and the charged interconnect traffic
//   .events            the flight recorder's ring of structured events
//                      (admission grants/sheds, epoch publishes, quarantines,
//                      cutoffs, shard kills), sim-clock ordered
//   .help / .quit
//
// Every statement runs through the serving layer: the shell is one session
// (priority from --priority) on a SessionManager gating the database at
// --max-inflight concurrent queries with a --queue-depth wait queue. A
// single interactive shell never queues against itself; the knobs exist so
// embedders wiring more sessions onto the same manager (see
// src/serve/session_manager.h) get the same admission behavior the shell
// exercises, and `.sessions` shows the gate state either way.
//
// With --trace=FILE every query records lifecycle spans (stage 1, rewrite,
// per-file mounts, stage 2) and the shell writes a Chrome trace-event JSON
// on exit — load it in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. With --events-dump=FILE (or DEX_FLIGHT_OUT) the flight
// recorder auto-dumps its event ring as JSON whenever a query fails, an
// admission is shed, or a file is quarantined. `DEX_LOG_LEVEL` sets the log
// threshold from the environment; --log-level= overrides it.
//
// Reads from stdin, so it scripts cleanly:
//   echo "SELECT COUNT(*) FROM F;" | dex_shell /repo

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/database.h"
#include "core/export.h"
#include "io/file_io.h"
#include "serve/session_manager.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

void PrintQueryStats(const dex::QueryStats& stats, bool verbose) {
  const auto& ts = stats.two_stage;
  std::printf("-- %llu row(s) in %.4fs",
              static_cast<unsigned long long>(stats.result_rows),
              stats.TotalSeconds());
  if (ts.stage1_only) {
    std::printf(" [metadata only]");
  } else if (ts.split) {
    std::printf(" [stage1 %.4fs | stage2 %.4fs | %zu files of interest, "
                "%llu mounted, %zu cached, %zu pruned]",
                ts.stage1_nanos / 1e9, ts.stage2_nanos / 1e9,
                ts.files_of_interest,
                static_cast<unsigned long long>(stats.mount.mounts),
                ts.files_planned_cache, ts.files_pruned);
  }
  if (stats.sim_io_nanos > 0) {
    std::printf(" [sim-I/O %.4fs]", stats.sim_io_nanos / 1e9);
  }
  if (stats.records_skipped_zonemap > 0 || stats.frames_skipped_zonemap > 0 ||
      stats.zonemap_fallbacks > 0) {
    std::printf(" [zonemap: %llu records, %llu frames skipped, %llu fallbacks]",
                static_cast<unsigned long long>(stats.records_skipped_zonemap),
                static_cast<unsigned long long>(stats.frames_skipped_zonemap),
                static_cast<unsigned long long>(stats.zonemap_fallbacks));
  }
  if (ts.workers > 1 && ts.mount_tasks > 0) {
    std::printf(" [%zu mount tasks on %zu workers, sim speedup %.2fx]",
                ts.mount_tasks, ts.workers,
                ts.parallel_sim_nanos > 0
                    ? static_cast<double>(ts.serial_sim_nanos) /
                          static_cast<double>(ts.parallel_sim_nanos)
                    : 1.0);
  }
  if (ts.num_shards > 1) {
    std::printf(" [%zu shards, net %.4fs sim]", ts.num_shards,
                ts.net_sim_nanos / 1e9);
  }
  if (ts.is_partial) {
    std::printf(" [PARTIAL: %zu skipped by deadline, %zu by memory, "
                "%zu on dead shards, cutoff at %.4fs sim]",
                ts.files_skipped_deadline, ts.files_skipped_memory,
                ts.files_skipped_shard, ts.cutoff_sim_nanos / 1e9);
  }
  const bool any_faults = stats.read_retries > 0 || stats.records_salvaged > 0 ||
                          stats.files_failed > 0 || stats.files_skipped > 0 ||
                          stats.records_skipped > 0;
  if (verbose || any_faults) {
    std::printf("\n   faults: %llu read retries, %llu records salvaged "
                "(%llu skipped), %llu files failed, %llu files skipped",
                static_cast<unsigned long long>(stats.read_retries),
                static_cast<unsigned long long>(stats.records_salvaged),
                static_cast<unsigned long long>(stats.records_skipped),
                static_cast<unsigned long long>(stats.files_failed),
                static_cast<unsigned long long>(stats.files_skipped));
  }
  std::printf("\n");
  if (verbose) {
    const auto& ex = ts.exec;
    if (ex.kernel_filter_batches > 0 || ex.kernel_agg_batches > 0 ||
        ex.scalar_filter_batches > 0 || ex.scalar_agg_batches > 0) {
      std::printf("   kernels: filter %llu vec / %llu scalar, "
                  "agg %llu vec / %llu scalar, %llu compactions\n",
                  static_cast<unsigned long long>(ex.kernel_filter_batches),
                  static_cast<unsigned long long>(ex.scalar_filter_batches),
                  static_cast<unsigned long long>(ex.kernel_agg_batches),
                  static_cast<unsigned long long>(ex.scalar_agg_batches),
                  static_cast<unsigned long long>(ex.selection_compactions));
    }
    for (const std::string& w : stats.warnings) {
      std::printf("   warning: %s\n", w.c_str());
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: dex_shell <repo-dir> [--eager] [--cache=none|lru|all] "
               "[--tuple-cache] [--cache-dir=<path>] [--derived] "
               "[--no-zonemap] [--no-simd-kernels] "
               "[--snapshot=<path>] [--batch=<n>] "
               "[--threads=<n>] [--refresh-threads=<n>] [--timeout=<ms>] "
               "[--memlimit=<mb>] [--shards=<n>] [--shard-policy=hash|station] "
               "[--max-inflight=<n>] [--queue-depth=<n>] "
               "[--priority=background|normal|interactive] [--trace=<file>] "
               "[--events-dump=<file>] "
               "[--log-level=debug|info|warning|error]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  dex::Logger::InitFromEnv();  // DEX_LOG_LEVEL; --log-level= overrides below
  dex::DatabaseOptions options;
  dex::serve::ServeOptions serve_options;
  int shell_priority = dex::ThreadPool::kPriorityInteractive;
  std::string repo;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--eager") {
      options.mode = dex::IngestionMode::kEager;
    } else if (arg == "--cache=none") {
      options.cache.policy = dex::CachePolicy::kNone;
    } else if (arg == "--cache=lru") {
      options.cache.policy = dex::CachePolicy::kLru;
    } else if (arg == "--cache=all") {
      options.cache.policy = dex::CachePolicy::kAll;
    } else if (arg == "--tuple-cache") {
      options.cache.granularity = dex::CacheGranularity::kTuple;
    } else if (dex::StartsWith(arg, "--cache-dir=")) {
      options.cache_dir = arg.substr(12);
      // The durable tier needs a retaining policy to have anything to
      // persist; lift the paper-default discard-always unless the user chose
      // a policy explicitly.
      if (options.cache.policy == dex::CachePolicy::kNone) {
        options.cache.policy = dex::CachePolicy::kLru;
      }
    } else if (arg == "--derived") {
      options.collect_derived_metadata = true;
      options.two_stage.pruning.file_level = true;
    } else if (arg == "--no-zonemap") {
      options.two_stage.pruning.record_level = false;
      options.two_stage.pruning.frame_level = false;
      options.collect_zone_maps = false;
    } else if (arg == "--no-simd-kernels") {
      options.two_stage.pruning.use_simd_kernels = false;
    } else if (dex::StartsWith(arg, "--snapshot=")) {
      options.metadata_snapshot_path = arg.substr(11);
    } else if (dex::StartsWith(arg, "--batch=")) {
      options.two_stage.mount_batch_size =
          static_cast<size_t>(std::atoi(arg.c_str() + 8));
    } else if (dex::StartsWith(arg, "--threads=")) {
      options.two_stage.num_threads =
          static_cast<size_t>(std::atoi(arg.c_str() + 10));
    } else if (dex::StartsWith(arg, "--refresh-threads=")) {
      options.stage1_threads =
          static_cast<size_t>(std::atoi(arg.c_str() + 18));
    } else if (dex::StartsWith(arg, "--timeout=")) {
      options.two_stage.sim_deadline_nanos =
          static_cast<uint64_t>(std::atoll(arg.c_str() + 10)) * 1000000ull;
    } else if (dex::StartsWith(arg, "--memlimit=")) {
      options.two_stage.memory_budget_bytes =
          static_cast<uint64_t>(std::atoll(arg.c_str() + 11)) << 20;
    } else if (dex::StartsWith(arg, "--shards=")) {
      options.shard.num_shards = std::atoi(arg.c_str() + 9);
    } else if (dex::StartsWith(arg, "--shard-policy=")) {
      const std::string p = dex::ToLower(arg.substr(15));
      if (p == "hash") {
        options.shard.policy = dex::ShardedRepository::Policy::kHash;
      } else if (p == "station") {
        options.shard.policy = dex::ShardedRepository::Policy::kStationRange;
      } else {
        std::fprintf(stderr, "unknown shard policy %s\n", p.c_str());
        return Usage();
      }
    } else if (dex::StartsWith(arg, "--max-inflight=")) {
      serve_options.max_inflight =
          static_cast<size_t>(std::atoi(arg.c_str() + 15));
    } else if (dex::StartsWith(arg, "--queue-depth=")) {
      serve_options.queue_depth =
          static_cast<size_t>(std::atoi(arg.c_str() + 14));
    } else if (dex::StartsWith(arg, "--priority=")) {
      const std::string p = dex::ToLower(arg.substr(11));
      if (p == "background") {
        shell_priority = dex::ThreadPool::kPriorityBackground;
      } else if (p == "normal") {
        shell_priority = dex::ThreadPool::kPriorityNormal;
      } else if (p == "interactive") {
        shell_priority = dex::ThreadPool::kPriorityInteractive;
      } else {
        std::fprintf(stderr, "unknown priority %s\n", p.c_str());
        return Usage();
      }
    } else if (dex::StartsWith(arg, "--trace=")) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) return Usage();
    } else if (dex::StartsWith(arg, "--events-dump=")) {
      const std::string path = arg.substr(14);
      if (path.empty()) return Usage();
      dex::obs::FlightRecorder::Global().set_dump_path(path);
    } else if (dex::StartsWith(arg, "--log-level=")) {
      dex::LogLevel level;
      if (!dex::ParseLogLevel(arg.substr(12), &level)) {
        std::fprintf(stderr, "unknown log level %s\n", arg.c_str() + 12);
        return Usage();
      }
      dex::Logger::set_threshold(level);
    } else if (arg[0] == '-') {
      return Usage();
    } else {
      repo = arg;
    }
  }
  if (repo.empty()) return Usage();
  if (!trace_path.empty()) {
    dex::obs::Tracer::Global().set_enabled(true);
  }

  auto db_or = dex::Database::Open(repo, options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto& db = *db_or;
  dex::serve::SessionManager sessions(db.get(), serve_options);
  dex::serve::SessionOptions shell_session;
  shell_session.name = "shell";
  shell_session.priority = shell_priority;
  auto session_or = sessions.OpenSession(shell_session);
  if (!session_or.ok()) {
    std::fprintf(stderr, "session open failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  const dex::serve::SessionManager::SessionId session_id = *session_or;
  const dex::OpenStats& open = db->open_stats();
  std::printf("dex shell — %zu files, %zu records, %s of metadata "
              "(%s mode, format %s)\n",
              open.num_files, open.num_records,
              dex::FormatBytes(open.metadata_bytes).c_str(),
              options.mode == dex::IngestionMode::kLazy ? "lazy" : "eager",
              db->format()->name().c_str());
  std::printf("type SQL (terminate with ';') or .help\n");

  dex::QueryStats last_stats;
  std::string pending;
  std::string line;
  while (true) {
    std::printf(pending.empty() ? "dex> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed = dex::Trim(line);
    if (trimmed.empty()) continue;

    if (pending.empty() && trimmed[0] == '.') {
      const auto parts = dex::Split(trimmed, ' ');
      const std::string& cmd = parts[0];
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(
            ".tables .schema <t> .explain [analyze] <sql> .stats .metrics "
            ".open .cache .coverage .refresh .cold .timeout <ms|off> "
            ".memlimit <mb|off> .sessions .shards .events "
            ".export <path> <sql> .quit\n");
      } else if (cmd == ".tables") {
        for (const std::string& name : db->catalog()->TableNames()) {
          auto table = db->catalog()->GetTable(name);
          auto kind = db->catalog()->GetKind(name);
          if (!table.ok() || !kind.ok()) continue;
          std::printf("%-10s %10zu rows   %s\n", name.c_str(),
                      (*table)->num_rows(),
                      *kind == dex::TableKind::kMetadata ? "metadata"
                                                         : "actual data");
        }
      } else if (cmd == ".schema" && parts.size() > 1) {
        auto table = db->catalog()->GetTable(parts[1]);
        if (table.ok()) {
          std::printf("%s %s\n", parts[1].c_str(),
                      (*table)->schema()->ToString().c_str());
        } else {
          std::printf("%s\n", table.status().ToString().c_str());
        }
      } else if (cmd == ".explain") {
        const std::string sql = trimmed.substr(8);
        if (parts.size() > 1 && dex::ToLower(parts[1]) == "analyze") {
          // Database::Query understands the EXPLAIN ANALYZE prefix; the
          // result is a one-column QUERY PLAN table.
          auto result = sessions.Submit(session_id, "EXPLAIN" + sql);
          if (!result.ok()) {
            std::printf("error: %s\n", result.status().ToString().c_str());
          } else {
            const auto& col = *result->table->column(0);
            for (size_t r = 0; r < result->table->num_rows(); ++r) {
              std::printf("%s\n", col.GetString(r).c_str());
            }
          }
        } else {
          auto text = db->Explain(sql);
          std::printf("%s\n", text.ok() ? text->c_str()
                                        : text.status().ToString().c_str());
        }
      } else if (cmd == ".stats") {
        PrintQueryStats(last_stats, /*verbose=*/true);
      } else if (cmd == ".metrics") {
        std::printf("%s", dex::obs::MetricsRegistry::Global().ToText().c_str());
      } else if (cmd == ".open") {
        std::printf("files=%zu records=%zu metadata=%s repo=%s open=%.3fs "
                    "(snapshot reused %zu)\n",
                    open.num_files, open.num_records,
                    dex::FormatBytes(open.metadata_bytes).c_str(),
                    dex::FormatBytes(open.repo_bytes).c_str(),
                    open.TotalSeconds(), open.snapshot_files_reused);
      } else if (cmd == ".cache") {
        const auto& cs = db->cache()->stats();
        std::printf("entries=%zu bytes=%s hits=%llu misses=%llu "
                    "evictions=%llu invalidations=%llu\n",
                    db->cache()->num_entries(),
                    dex::FormatBytes(db->cache()->bytes_used()).c_str(),
                    static_cast<unsigned long long>(cs.hits),
                    static_cast<unsigned long long>(cs.misses),
                    static_cast<unsigned long long>(cs.evictions),
                    static_cast<unsigned long long>(cs.invalidations));
        if (db->persistent_cache() != nullptr) {
          const auto ps = db->persistent_cache()->stats();
          std::printf("disk tier: dir=%s entries=%zu persisted=%llu (%s) "
                      "spills=%llu reloads=%llu recovered=%llu "
                      "quarantined=%llu stale=%llu\n",
                      db->persistent_cache()->options().dir.c_str(),
                      db->persistent_cache()->num_entries(),
                      static_cast<unsigned long long>(ps.persisted),
                      dex::FormatBytes(ps.persisted_bytes).c_str(),
                      static_cast<unsigned long long>(cs.spills),
                      static_cast<unsigned long long>(cs.reloads),
                      static_cast<unsigned long long>(ps.recovered),
                      static_cast<unsigned long long>(ps.quarantined),
                      static_cast<unsigned long long>(ps.stale_dropped));
        }
      } else if (cmd == ".coverage") {
        auto stats = db->AnalyzeCoverage();
        if (stats.ok()) {
          std::printf("%zu streams: %zu gaps (%.1fs), %zu overlaps (%.1fs) — "
                      "query tables GAPS / OVERLAPS\n",
                      stats->streams, stats->gaps, stats->total_gap_ms / 1e3,
                      stats->overlaps, stats->total_overlap_ms / 1e3);
        } else {
          std::printf("%s\n", stats.status().ToString().c_str());
        }
      } else if (cmd == ".refresh") {
        auto r = db->Refresh();
        if (r.ok()) {
          std::printf("+%zu new, ~%zu changed, -%zu removed "
                      "(%zu scanned, %zu reused",
                      r->files_added, r->files_changed, r->files_removed,
                      r->files_scanned, r->files_reused);
          if (r->files_quarantined > 0) {
            std::printf(", %zu quarantined", r->files_quarantined);
          }
          std::printf(") in %.4fs", (r->scan_nanos + r->sim_io_nanos) / 1e9);
          if (r->sim_io_nanos > 0) {
            std::printf(" [sim-I/O %.4fs]", r->sim_io_nanos / 1e9);
          }
          if (r->workers > 1 && r->files_scanned > 0) {
            std::printf(" [%zu scan tasks on %zu workers, sim speedup %.2fx]",
                        r->files_scanned, r->workers,
                        r->parallel_sim_nanos > 0
                            ? static_cast<double>(r->serial_sim_nanos) /
                                  static_cast<double>(r->parallel_sim_nanos)
                            : 1.0);
          }
          if (r->is_partial) {
            std::printf(" [PARTIAL: %zu skipped by deadline, %zu on dead "
                        "shards]",
                        r->files_skipped_deadline, r->files_skipped_shard);
          }
          std::printf("\n");
          for (const std::string& w : r->warnings) {
            std::printf("   warning: %s\n", w.c_str());
          }
        } else {
          std::printf("%s\n", r.status().ToString().c_str());
        }
      } else if (cmd == ".export" && parts.size() > 2) {
        const std::string path = parts[1];
        const std::string sql = trimmed.substr(trimmed.find(parts[2],
                                                            8 + path.size()));
        auto result = sessions.Submit(session_id, sql);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          const dex::Status st = dex::ExportTableCsv(*result->table, path);
          std::printf("%s: %llu row(s) %s\n", path.c_str(),
                      static_cast<unsigned long long>(result->table->num_rows()),
                      st.ok() ? "written" : st.ToString().c_str());
        }
      } else if (cmd == ".cold") {
        db->FlushBuffers();
        std::printf("buffers flushed; the next query runs cold\n");
      } else if (cmd == ".timeout" && parts.size() > 1) {
        if (dex::ToLower(parts[1]) == "off") {
          db->set_sim_deadline_nanos(0);
          std::printf("query deadline off\n");
        } else {
          const long long ms = std::atoll(parts[1].c_str());
          db->set_sim_deadline_nanos(static_cast<uint64_t>(ms) * 1000000ull);
          std::printf("query deadline: %lldms simulated time "
                      "(partial results past it)\n", ms);
        }
      } else if (cmd == ".memlimit" && parts.size() > 1) {
        if (dex::ToLower(parts[1]) == "off") {
          db->set_memory_budget_bytes(0);
          std::printf("memory budget off\n");
        } else {
          const long long mb = std::atoll(parts[1].c_str());
          db->set_memory_budget_bytes(static_cast<uint64_t>(mb) << 20);
          std::printf("memory budget: %lldMB over mounted data + cache "
                      "(currently %s reserved)\n", mb,
                      dex::FormatBytes(db->memory_budget()->used()).c_str());
        }
      } else if (cmd == ".shards") {
        const auto rows = db->shards()->StatusRows();
        if (rows.size() < 2) {
          std::printf("sharding off (run with --shards=<n>)\n");
        } else {
          std::printf("%zu shards (%s partitioning)\n", rows.size(),
                      db->shards()->options().policy ==
                              dex::ShardedRepository::Policy::kHash
                          ? "hash"
                          : "station-range");
          for (const auto& row : rows) {
            std::printf("  shard %-3d %-5s %6zu files   net: %llu msgs, %s, "
                        "%.4fs sim, %llu resends\n",
                        row.shard, row.alive ? "alive" : "DEAD", row.files,
                        static_cast<unsigned long long>(row.net_messages),
                        dex::FormatBytes(row.net_bytes).c_str(),
                        row.net_sim_nanos / 1e9,
                        static_cast<unsigned long long>(row.net_resends));
          }
        }
      } else if (cmd == ".events") {
        auto& recorder = dex::obs::FlightRecorder::Global();
        const auto events = recorder.Snapshot();
        if (events.empty()) {
          std::printf("no flight events recorded\n");
        } else {
          std::printf("%zu flight event(s)%s\n", events.size(),
                      recorder.dropped() > 0
                          ? (" (" + std::to_string(recorder.dropped()) +
                             " older dropped)")
                                .c_str()
                          : "");
          for (const auto& e : events) {
            std::printf("  [%10.4fs] %-16s", e.sim_nanos / 1e9, e.kind.c_str());
            if (!e.session.empty()) std::printf(" session=%s", e.session.c_str());
            if (e.priority >= 0) std::printf(" prio=%d", e.priority);
            if (e.shard >= 0) std::printf(" shard=%d", e.shard);
            if (!e.detail.empty()) std::printf(" %s", e.detail.c_str());
            std::printf("\n");
          }
        }
      } else if (cmd == ".sessions") {
        const auto stats = sessions.stats();
        std::printf("gate: %zu/%zu in flight, %zu/%zu queued — "
                    "admitted %llu (waited %llu), shed %llu; epoch %llu "
                    "(%llu retired)\n",
                    stats.inflight, sessions.options().max_inflight,
                    stats.queued, sessions.options().queue_depth,
                    static_cast<unsigned long long>(stats.admitted),
                    static_cast<unsigned long long>(stats.waited),
                    static_cast<unsigned long long>(stats.shed),
                    static_cast<unsigned long long>(db->current_epoch()),
                    static_cast<unsigned long long>(db->epochs_retired()));
        static const char* kPriorityNames[] = {"background", "normal",
                                               "interactive"};
        for (const auto& info : sessions.ListSessions()) {
          std::printf("  #%llu %-12s %-11s cap=%zu inflight=%zu "
                      "submitted=%llu shed=%llu%s\n",
                      static_cast<unsigned long long>(info.id),
                      info.name.c_str(), kPriorityNames[info.priority],
                      info.max_inflight, info.inflight,
                      static_cast<unsigned long long>(info.submitted),
                      static_cast<unsigned long long>(info.shed),
                      info.closed ? " (closed)" : "");
        }
      } else {
        std::printf("unknown command %s (try .help)\n", cmd.c_str());
      }
      continue;
    }

    // Accumulate SQL until a ';'.
    pending += (pending.empty() ? "" : " ") + trimmed;
    if (pending.find(';') == std::string::npos) continue;
    const std::string sql = pending;
    pending.clear();

    auto result = sessions.Submit(session_id, sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      if (result.status().IsOverloaded()) {
        const uint64_t hint = dex::serve::BackoffHintNanos(result.status());
        if (hint > 0) {
          std::printf("   (retry in ~%.1fms)\n", hint / 1e6);
        }
      }
      continue;
    }
    std::printf("%s", result->table->ToString(40).c_str());
    last_stats = result->stats;
    PrintQueryStats(last_stats, /*verbose=*/false);
  }
  std::printf("\n");
  if (!trace_path.empty()) {
    const auto spans = dex::obs::Tracer::Global().Drain();
    const dex::Status st = dex::obs::WriteChromeTrace(trace_path, spans);
    if (st.ok()) {
      std::fprintf(stderr, "trace: %zu span(s) written to %s\n", spans.size(),
                   trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
    }
  }
  return 0;
}
