// Generalization (paper §5): the same exploration over two different file
// formats through the same kernel. A scientific developer adds a format by
// implementing FormatAdapter; no query-processing code changes.

#include <cstdio>

#include "common/string_utils.h"
#include "core/database.h"
#include "csvf/csv_format.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace {
constexpr const char* kMseedDir = "/tmp/dex_multiformat_mseed";
constexpr const char* kCsvDir = "/tmp/dex_multiformat_csv";
}

int main() {
  dex::mseed::GeneratorOptions gen;
  gen.num_stations = 3;
  gen.channels_per_station = 2;
  gen.num_days = 3;
  gen.sample_rate_hz = 0.2;
  (void)dex::RemoveDirRecursive(kMseedDir);
  (void)dex::RemoveDirRecursive(kCsvDir);
  if (!dex::mseed::GenerateRepository(kMseedDir, gen).ok()) return 1;
  if (!dex::csvf::ConvertMseedRepository(kMseedDir, kCsvDir).ok()) return 1;

  const char* session[] = {
      "SELECT F.station, COUNT(*) AS files FROM F GROUP BY F.station "
      "ORDER BY F.station;",
      "SELECT COUNT(*) AS samples, AVG(D.sample_value) AS mean "
      "FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK';",
      "SELECT F.channel, MAX(D.sample_value) AS peak FROM F "
      "JOIN D ON F.uri = D.uri GROUP BY F.channel ORDER BY F.channel;",
  };

  for (const std::string dir : {std::string(kMseedDir), std::string(kCsvDir)}) {
    // Format auto-detection: no format is named anywhere below.
    auto db = dex::Database::Open(dir, {});
    if (!db.ok()) {
      std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
      return 1;
    }
    std::printf("\n=== repository %s (format: %s, %s) ===\n", dir.c_str(),
                (*db)->format()->name().c_str(),
                dex::FormatBytes((*db)->open_stats().repo_bytes).c_str());
    for (const char* sql : session) {
      auto r = (*db)->Query(sql);
      if (!r.ok()) {
        std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf("%s", r->table->ToString().c_str());
    }
  }
  std::printf("\nidentical answers from both formats — the two-stage kernel\n"
              "never looked inside a file itself; the adapters did.\n");
  return 0;
}
