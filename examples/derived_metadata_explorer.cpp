// Derived metadata as a side effect of exploration (paper §5):
//
//   "we can derive metadata as a side-effect of ALi or actual data
//    processing, without the explorer noticing."
//
// A two-phase story: the explorer browses a station once (mounting its
// files); afterwards, per-record summary statistics exist in the DM table.
// Later questions — which records are interesting, where are the peaks —
// are answered from metadata alone, and value-range predicates skip files
// that provably cannot match.

#include <cstdio>

#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace {
constexpr const char* kRepoDir = "/tmp/dex_derived_repo";
}

int main() {
  dex::mseed::GeneratorOptions gen;
  gen.num_stations = 3;
  gen.channels_per_station = 3;
  gen.num_days = 5;
  gen.sample_rate_hz = 0.5;
  gen.event_probability = 0.3;
  (void)dex::RemoveDirRecursive(kRepoDir);
  if (!dex::mseed::GenerateRepository(kRepoDir, gen).ok()) return 1;

  dex::DatabaseOptions options;
  options.collect_derived_metadata = true;
  options.two_stage.pruning.file_level = true;
  auto db_or = dex::Database::Open(kRepoDir, options);
  if (!db_or.ok()) return 1;
  auto& db = *db_or;

  std::printf("phase 1: ordinary exploration of station ISK (mounts happen)\n");
  auto first = db->Query(
      "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean "
      "FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK';");
  if (!first.ok()) return 1;
  std::printf("%s", first->table->ToString().c_str());
  std::printf("  mounted %llu files; DM table now holds %zu record summaries\n",
              static_cast<unsigned long long>(first->stats.mount.mounts),
              static_cast<size_t>(
                  db->derived_metadata()->table()->num_rows()));

  std::printf("\nphase 2: which ISK records carry a large event?  "
              "(metadata only — not a single mount)\n");
  auto hunting = db->Query(
      "SELECT DM.uri, DM.record_id, DM.max_value FROM DM "
      "WHERE DM.max_value > 2000 ORDER BY DM.max_value DESC LIMIT 5;");
  if (!hunting.ok()) {
    std::fprintf(stderr, "%s\n", hunting.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", hunting->table->ToString().c_str());
  std::printf("  stage1_only=%s, mounts=%llu\n",
              hunting->stats.two_stage.stage1_only ? "yes" : "no",
              static_cast<unsigned long long>(hunting->stats.mount.mounts));

  std::printf("\nphase 3: an outlier hunt across ISK — files whose stats "
              "exclude the range are pruned before mounting\n");
  auto pruned = db->Query(
      "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
      "WHERE F.station = 'ISK' AND D.sample_value > 100000;");
  if (!pruned.ok()) return 1;
  std::printf("  matches: %lld, files pruned: %zu, files mounted: %llu\n",
              static_cast<long long>(pruned->table->GetValue(0, 0).int64()),
              pruned->stats.two_stage.files_pruned,
              static_cast<unsigned long long>(pruned->stats.mount.mounts));

  std::printf("\nphase 4: joining DM with F — derived metadata participates "
              "in Q_f like any metadata table\n");
  auto joined = db->Query(
      "SELECT F.channel, MAX(DM.max_value) AS peak "
      "FROM F JOIN DM ON F.uri = DM.uri GROUP BY F.channel ORDER BY F.channel;");
  if (!joined.ok()) {
    std::fprintf(stderr, "%s\n", joined.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", joined->table->ToString().c_str());
  return 0;
}
