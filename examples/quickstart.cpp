// Quickstart: generate a small synthetic seismic repository, open it with
// automated lazy ingestion (ALi), and run the paper's Query 1 — the
// seismologist's short-term average — plus a metadata-only browse.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "common/string_utils.h"
#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace {

constexpr const char* kRepoDir = "/tmp/dex_quickstart_repo";

// The paper's Query 1 (Figure 2), with the sample window widened to one
// minute so the default 1 Hz synthetic data yields a meaningful average.
constexpr const char* kQuery1 = R"sql(
    SELECT AVG(D.sample_value)
    FROM F JOIN R ON F.uri = R.uri
           JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
    WHERE F.station = 'ISK' AND F.channel = 'BHE'
      AND R.start_time > '2010-01-12T00:00:00.000'
      AND R.start_time < '2010-01-12T23:59:59.999'
      AND D.sample_time > '2010-01-12T22:15:00.000'
      AND D.sample_time < '2010-01-12T22:16:00.000';
)sql";

}  // namespace

int main() {
  // 1. A repository of mSEED-style files: 4 stations x 3 channels x 14 days.
  dex::mseed::GeneratorOptions gen;
  gen.num_stations = 4;
  gen.channels_per_station = 3;
  gen.num_days = 14;
  gen.sample_rate_hz = 1.0;
  (void)dex::RemoveDirRecursive(kRepoDir);
  auto repo = dex::mseed::GenerateRepository(kRepoDir, gen);
  if (!repo.ok()) {
    std::cerr << "generate: " << repo.status().ToString() << "\n";
    return 1;
  }
  std::printf("repository: %zu files, %s, %llu samples\n", repo->files.size(),
              dex::FormatBytes(repo->total_bytes).c_str(),
              static_cast<unsigned long long>(repo->total_samples));

  // 2. Open lazily: only metadata is loaded.
  dex::DatabaseOptions options;
  options.mode = dex::IngestionMode::kLazy;
  auto db = dex::Database::Open(kRepoDir, options);
  if (!db.ok()) {
    std::cerr << "open: " << db.status().ToString() << "\n";
    return 1;
  }
  const dex::OpenStats& open = (*db)->open_stats();
  std::printf("opened in %.3fs — metadata loaded: %s (repository: %s)\n",
              open.TotalSeconds(), dex::FormatBytes(open.metadata_bytes).c_str(),
              dex::FormatBytes(open.repo_bytes).c_str());

  // 3. A metadata-only browse: answered entirely by stage 1, no file touched.
  auto browse = (*db)->Query(
      "SELECT F.station, COUNT(*) AS n_files FROM F GROUP BY F.station "
      "ORDER BY F.station;");
  if (!browse.ok()) {
    std::cerr << "browse: " << browse.status().ToString() << "\n";
    return 1;
  }
  std::printf("\nfiles per station (stage 1 only = %s):\n%s\n",
              browse->stats.two_stage.stage1_only ? "yes" : "no",
              browse->table->ToString().c_str());

  // 4. The paper's Query 1: stage 1 identifies the files of interest, stage 2
  //    mounts only those.
  auto q1 = (*db)->Query(kQuery1);
  if (!q1.ok()) {
    std::cerr << "query 1: " << q1.status().ToString() << "\n";
    return 1;
  }
  std::printf("Query 1 result:\n%s", q1->table->ToString().c_str());
  const dex::QueryStats& qs = q1->stats;
  std::printf(
      "\ntwo-stage execution: split=%s files_of_interest=%zu mounted=%llu "
      "samples_decoded=%llu\n",
      qs.two_stage.split ? "yes" : "no", qs.two_stage.files_of_interest,
      static_cast<unsigned long long>(qs.mount.mounts),
      static_cast<unsigned long long>(qs.mount.samples_decoded));
  std::printf("time: %.4fs (stage1 %.4fs, stage2 %.4fs, sim-I/O %.4fs)\n",
              qs.TotalSeconds(), qs.two_stage.stage1_nanos / 1e9,
              qs.two_stage.stage2_nanos / 1e9, qs.sim_io_nanos / 1e9);

  // 5. EXPLAIN shows the Q_f/Q_s decomposition.
  auto explain = (*db)->Explain(kQuery1);
  if (explain.ok()) {
    std::printf("\n%s", explain->c_str());
  }
  return 0;
}
