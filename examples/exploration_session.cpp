// A seismologist's exploration session, the paper's §1 motivation:
// "The explorer step by step explores the data, until he is satisfied with
//  his understanding of data or he finds out some interesting knowledge."
//
// The session: survey the repository (metadata only) -> find the most active
// day for a station -> zoom into its channels -> hunt the peak amplitude ->
// retrieve the waveform around it. Along the way we print what each step
// cost and what ALi mounted, demonstrating that insight arrives before any
// bulk ingestion, and that a file cache turns revisits into cache-scans.

#include <cstdio>
#include <string>

#include "common/string_utils.h"
#include "common/time_utils.h"
#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"

namespace {

constexpr const char* kRepoDir = "/tmp/dex_session_repo";

void Step(int n, const std::string& title) {
  std::printf("\n--- step %d: %s ---\n", n, title.c_str());
}

dex::QueryResult MustQuery(dex::Database* db, const std::string& sql) {
  auto r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n%s\n", r.status().ToString().c_str(),
                 sql.c_str());
    std::exit(1);
  }
  const auto& ts = r->stats.two_stage;
  std::printf("[%.4fs | %s | files of interest %zu, mounted %llu, cached %zu]\n",
              r->stats.TotalSeconds(),
              ts.stage1_only ? "metadata only" : "two-stage",
              ts.files_of_interest,
              static_cast<unsigned long long>(r->stats.mount.mounts),
              ts.files_planned_cache);
  return std::move(*r);
}

}  // namespace

int main() {
  dex::mseed::GeneratorOptions gen;
  gen.num_stations = 5;
  gen.channels_per_station = 3;
  gen.num_days = 10;
  gen.sample_rate_hz = 0.5;
  gen.event_probability = 0.25;
  (void)dex::RemoveDirRecursive(kRepoDir);
  auto repo = dex::mseed::GenerateRepository(kRepoDir, gen);
  if (!repo.ok()) {
    std::fprintf(stderr, "generate: %s\n", repo.status().ToString().c_str());
    return 1;
  }

  dex::DatabaseOptions options;
  options.cache.policy = dex::CachePolicy::kLru;
  options.cache.capacity_bytes = 256ull << 20;
  auto db_or = dex::Database::Open(kRepoDir, options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto& db = *db_or;
  std::printf("opened %zu files (%s) in %.3fs — metadata only\n",
              db->open_stats().num_files,
              dex::FormatBytes(db->open_stats().repo_bytes).c_str(),
              db->open_stats().TotalSeconds());

  Step(1, "survey the repository (which stations, how much data?)");
  auto survey = MustQuery(db.get(),
                          "SELECT F.station, COUNT(*) AS files, "
                          "SUM(F.size_bytes) AS bytes FROM F "
                          "GROUP BY F.station ORDER BY F.station;");
  std::printf("%s", survey.table->ToString().c_str());

  Step(2, "records per day for station ISK (still metadata only)");
  auto days = MustQuery(
      db.get(),
      "SELECT R.start_time, COUNT(*) AS records, SUM(R.n_samples) AS samples "
      "FROM F JOIN R ON F.uri = R.uri WHERE F.station = 'ISK' "
      "GROUP BY R.start_time ORDER BY R.start_time LIMIT 8;");
  std::printf("%s", days.table->ToString().c_str());

  Step(3, "first touch of actual data: peak amplitude per ISK channel, day 3");
  auto peaks = MustQuery(
      db.get(),
      "SELECT F.channel, MAX(D.sample_value) AS peak, MIN(D.sample_value) AS "
      "trough FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK' "
      "AND R.start_time > '2010-01-03T00:00:00.000' "
      "AND R.start_time < '2010-01-03T23:59:59.999' "
      "GROUP BY F.channel ORDER BY F.channel;");
  std::printf("%s", peaks.table->ToString().c_str());

  Step(4, "zoom: how many extreme samples on that day? (files now cached)");
  auto extremes = MustQuery(
      db.get(),
      "SELECT F.channel, COUNT(*) AS extreme_samples "
      "FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK' "
      "AND R.start_time > '2010-01-03T00:00:00.000' "
      "AND R.start_time < '2010-01-03T23:59:59.999' "
      "AND D.sample_value > 1000 GROUP BY F.channel ORDER BY F.channel;");
  std::printf("%s", extremes.table->ToString().c_str());

  Step(5, "retrieve a waveform snippet for visualization (paper's Query 2)");
  auto snippet = MustQuery(
      db.get(),
      "SELECT D.sample_time, D.sample_value "
      "FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
      "WHERE F.station = 'ISK' "
      "AND R.start_time > '2010-01-03T00:00:00.000' "
      "AND R.start_time < '2010-01-03T23:59:59.999' "
      "AND D.sample_time > '2010-01-03T12:00:00.000' "
      "AND D.sample_time < '2010-01-03T12:05:00.000' "
      "ORDER BY D.sample_time LIMIT 10;");
  std::printf("%s", snippet.table->ToString().c_str());

  Step(6, "move to another station — only its files get mounted");
  auto elsewhere = MustQuery(
      db.get(),
      "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean "
      "FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ANK' "
      "AND F.channel = 'BHZ';");
  std::printf("%s", elsewhere.table->ToString().c_str());

  const auto& cache_stats = db->cache()->stats();
  std::printf("\nsession cache: %llu hits, %llu insertions, %s held\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.insertions),
              dex::FormatBytes(db->cache()->bytes_used()).c_str());
  return 0;
}
