file(REMOVE_RECURSE
  "CMakeFiles/event_detection.dir/event_detection.cpp.o"
  "CMakeFiles/event_detection.dir/event_detection.cpp.o.d"
  "event_detection"
  "event_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
