file(REMOVE_RECURSE
  "CMakeFiles/derived_metadata_explorer.dir/derived_metadata_explorer.cpp.o"
  "CMakeFiles/derived_metadata_explorer.dir/derived_metadata_explorer.cpp.o.d"
  "derived_metadata_explorer"
  "derived_metadata_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_metadata_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
