
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/derived_metadata_explorer.cpp" "examples/CMakeFiles/derived_metadata_explorer.dir/derived_metadata_explorer.cpp.o" "gcc" "examples/CMakeFiles/derived_metadata_explorer.dir/derived_metadata_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dex_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dex_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/csvf/CMakeFiles/dex_csvf.dir/DependInfo.cmake"
  "/root/repo/build/src/mseed/CMakeFiles/dex_mseed.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dex_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
