# Empty dependencies file for derived_metadata_explorer.
# This may be replaced when dependencies are built.
