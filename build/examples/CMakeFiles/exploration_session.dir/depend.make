# Empty dependencies file for exploration_session.
# This may be replaced when dependencies are built.
