# Empty compiler generated dependencies file for multi_format.
# This may be replaced when dependencies are built.
