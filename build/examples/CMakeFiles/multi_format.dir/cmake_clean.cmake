file(REMOVE_RECURSE
  "CMakeFiles/multi_format.dir/multi_format.cpp.o"
  "CMakeFiles/multi_format.dir/multi_format.cpp.o.d"
  "multi_format"
  "multi_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
