# Empty dependencies file for interactive_breakpoint.
# This may be replaced when dependencies are built.
