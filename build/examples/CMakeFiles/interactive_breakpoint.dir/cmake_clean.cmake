file(REMOVE_RECURSE
  "CMakeFiles/interactive_breakpoint.dir/interactive_breakpoint.cpp.o"
  "CMakeFiles/interactive_breakpoint.dir/interactive_breakpoint.cpp.o.d"
  "interactive_breakpoint"
  "interactive_breakpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_breakpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
