# Empty dependencies file for dex_shell.
# This may be replaced when dependencies are built.
