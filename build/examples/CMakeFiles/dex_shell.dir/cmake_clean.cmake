file(REMOVE_RECURSE
  "CMakeFiles/dex_shell.dir/dex_shell.cpp.o"
  "CMakeFiles/dex_shell.dir/dex_shell.cpp.o.d"
  "dex_shell"
  "dex_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
