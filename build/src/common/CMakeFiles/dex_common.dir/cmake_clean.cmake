file(REMOVE_RECURSE
  "CMakeFiles/dex_common.dir/logging.cc.o"
  "CMakeFiles/dex_common.dir/logging.cc.o.d"
  "CMakeFiles/dex_common.dir/status.cc.o"
  "CMakeFiles/dex_common.dir/status.cc.o.d"
  "CMakeFiles/dex_common.dir/string_utils.cc.o"
  "CMakeFiles/dex_common.dir/string_utils.cc.o.d"
  "CMakeFiles/dex_common.dir/time_utils.cc.o"
  "CMakeFiles/dex_common.dir/time_utils.cc.o.d"
  "CMakeFiles/dex_common.dir/types.cc.o"
  "CMakeFiles/dex_common.dir/types.cc.o.d"
  "CMakeFiles/dex_common.dir/value.cc.o"
  "CMakeFiles/dex_common.dir/value.cc.o.d"
  "libdex_common.a"
  "libdex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
