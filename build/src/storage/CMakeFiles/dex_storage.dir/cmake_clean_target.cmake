file(REMOVE_RECURSE
  "libdex_storage.a"
)
