file(REMOVE_RECURSE
  "CMakeFiles/dex_storage.dir/catalog.cc.o"
  "CMakeFiles/dex_storage.dir/catalog.cc.o.d"
  "CMakeFiles/dex_storage.dir/column.cc.o"
  "CMakeFiles/dex_storage.dir/column.cc.o.d"
  "CMakeFiles/dex_storage.dir/hash_index.cc.o"
  "CMakeFiles/dex_storage.dir/hash_index.cc.o.d"
  "CMakeFiles/dex_storage.dir/schema.cc.o"
  "CMakeFiles/dex_storage.dir/schema.cc.o.d"
  "CMakeFiles/dex_storage.dir/table.cc.o"
  "CMakeFiles/dex_storage.dir/table.cc.o.d"
  "libdex_storage.a"
  "libdex_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
