# Empty compiler generated dependencies file for dex_storage.
# This may be replaced when dependencies are built.
