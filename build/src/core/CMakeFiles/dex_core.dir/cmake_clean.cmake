file(REMOVE_RECURSE
  "CMakeFiles/dex_core.dir/cache_manager.cc.o"
  "CMakeFiles/dex_core.dir/cache_manager.cc.o.d"
  "CMakeFiles/dex_core.dir/coverage.cc.o"
  "CMakeFiles/dex_core.dir/coverage.cc.o.d"
  "CMakeFiles/dex_core.dir/database.cc.o"
  "CMakeFiles/dex_core.dir/database.cc.o.d"
  "CMakeFiles/dex_core.dir/derived_metadata.cc.o"
  "CMakeFiles/dex_core.dir/derived_metadata.cc.o.d"
  "CMakeFiles/dex_core.dir/eager_loader.cc.o"
  "CMakeFiles/dex_core.dir/eager_loader.cc.o.d"
  "CMakeFiles/dex_core.dir/export.cc.o"
  "CMakeFiles/dex_core.dir/export.cc.o.d"
  "CMakeFiles/dex_core.dir/file_registry.cc.o"
  "CMakeFiles/dex_core.dir/file_registry.cc.o.d"
  "CMakeFiles/dex_core.dir/format_adapter.cc.o"
  "CMakeFiles/dex_core.dir/format_adapter.cc.o.d"
  "CMakeFiles/dex_core.dir/informativeness.cc.o"
  "CMakeFiles/dex_core.dir/informativeness.cc.o.d"
  "CMakeFiles/dex_core.dir/metadata_snapshot.cc.o"
  "CMakeFiles/dex_core.dir/metadata_snapshot.cc.o.d"
  "CMakeFiles/dex_core.dir/mounter.cc.o"
  "CMakeFiles/dex_core.dir/mounter.cc.o.d"
  "CMakeFiles/dex_core.dir/plan_splitter.cc.o"
  "CMakeFiles/dex_core.dir/plan_splitter.cc.o.d"
  "CMakeFiles/dex_core.dir/seismic_schema.cc.o"
  "CMakeFiles/dex_core.dir/seismic_schema.cc.o.d"
  "CMakeFiles/dex_core.dir/two_stage.cc.o"
  "CMakeFiles/dex_core.dir/two_stage.cc.o.d"
  "libdex_core.a"
  "libdex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
