
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_manager.cc" "src/core/CMakeFiles/dex_core.dir/cache_manager.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/cache_manager.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/core/CMakeFiles/dex_core.dir/coverage.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/coverage.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/dex_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/database.cc.o.d"
  "/root/repo/src/core/derived_metadata.cc" "src/core/CMakeFiles/dex_core.dir/derived_metadata.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/derived_metadata.cc.o.d"
  "/root/repo/src/core/eager_loader.cc" "src/core/CMakeFiles/dex_core.dir/eager_loader.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/eager_loader.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/dex_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/export.cc.o.d"
  "/root/repo/src/core/file_registry.cc" "src/core/CMakeFiles/dex_core.dir/file_registry.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/file_registry.cc.o.d"
  "/root/repo/src/core/format_adapter.cc" "src/core/CMakeFiles/dex_core.dir/format_adapter.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/format_adapter.cc.o.d"
  "/root/repo/src/core/informativeness.cc" "src/core/CMakeFiles/dex_core.dir/informativeness.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/informativeness.cc.o.d"
  "/root/repo/src/core/metadata_snapshot.cc" "src/core/CMakeFiles/dex_core.dir/metadata_snapshot.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/metadata_snapshot.cc.o.d"
  "/root/repo/src/core/mounter.cc" "src/core/CMakeFiles/dex_core.dir/mounter.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/mounter.cc.o.d"
  "/root/repo/src/core/plan_splitter.cc" "src/core/CMakeFiles/dex_core.dir/plan_splitter.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/plan_splitter.cc.o.d"
  "/root/repo/src/core/seismic_schema.cc" "src/core/CMakeFiles/dex_core.dir/seismic_schema.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/seismic_schema.cc.o.d"
  "/root/repo/src/core/two_stage.cc" "src/core/CMakeFiles/dex_core.dir/two_stage.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/two_stage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/dex_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dex_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/mseed/CMakeFiles/dex_mseed.dir/DependInfo.cmake"
  "/root/repo/build/src/csvf/CMakeFiles/dex_csvf.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dex_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
