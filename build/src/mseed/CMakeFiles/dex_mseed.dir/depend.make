# Empty dependencies file for dex_mseed.
# This may be replaced when dependencies are built.
