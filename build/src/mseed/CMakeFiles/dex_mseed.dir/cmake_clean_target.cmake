file(REMOVE_RECURSE
  "libdex_mseed.a"
)
