
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mseed/generator.cc" "src/mseed/CMakeFiles/dex_mseed.dir/generator.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/generator.cc.o.d"
  "/root/repo/src/mseed/reader.cc" "src/mseed/CMakeFiles/dex_mseed.dir/reader.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/reader.cc.o.d"
  "/root/repo/src/mseed/record.cc" "src/mseed/CMakeFiles/dex_mseed.dir/record.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/record.cc.o.d"
  "/root/repo/src/mseed/scanner.cc" "src/mseed/CMakeFiles/dex_mseed.dir/scanner.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/scanner.cc.o.d"
  "/root/repo/src/mseed/steim.cc" "src/mseed/CMakeFiles/dex_mseed.dir/steim.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/steim.cc.o.d"
  "/root/repo/src/mseed/steim2.cc" "src/mseed/CMakeFiles/dex_mseed.dir/steim2.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/steim2.cc.o.d"
  "/root/repo/src/mseed/writer.cc" "src/mseed/CMakeFiles/dex_mseed.dir/writer.cc.o" "gcc" "src/mseed/CMakeFiles/dex_mseed.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dex_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
