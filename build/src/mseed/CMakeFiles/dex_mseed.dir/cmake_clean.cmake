file(REMOVE_RECURSE
  "CMakeFiles/dex_mseed.dir/generator.cc.o"
  "CMakeFiles/dex_mseed.dir/generator.cc.o.d"
  "CMakeFiles/dex_mseed.dir/reader.cc.o"
  "CMakeFiles/dex_mseed.dir/reader.cc.o.d"
  "CMakeFiles/dex_mseed.dir/record.cc.o"
  "CMakeFiles/dex_mseed.dir/record.cc.o.d"
  "CMakeFiles/dex_mseed.dir/scanner.cc.o"
  "CMakeFiles/dex_mseed.dir/scanner.cc.o.d"
  "CMakeFiles/dex_mseed.dir/steim.cc.o"
  "CMakeFiles/dex_mseed.dir/steim.cc.o.d"
  "CMakeFiles/dex_mseed.dir/steim2.cc.o"
  "CMakeFiles/dex_mseed.dir/steim2.cc.o.d"
  "CMakeFiles/dex_mseed.dir/writer.cc.o"
  "CMakeFiles/dex_mseed.dir/writer.cc.o.d"
  "libdex_mseed.a"
  "libdex_mseed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_mseed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
