
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/dex_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/dex_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/dex_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/dex_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/logical_plan.cc" "src/engine/CMakeFiles/dex_engine.dir/logical_plan.cc.o" "gcc" "src/engine/CMakeFiles/dex_engine.dir/logical_plan.cc.o.d"
  "/root/repo/src/engine/optimizer.cc" "src/engine/CMakeFiles/dex_engine.dir/optimizer.cc.o" "gcc" "src/engine/CMakeFiles/dex_engine.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dex_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
