# Empty compiler generated dependencies file for dex_engine.
# This may be replaced when dependencies are built.
