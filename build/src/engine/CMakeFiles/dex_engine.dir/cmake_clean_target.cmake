file(REMOVE_RECURSE
  "libdex_engine.a"
)
