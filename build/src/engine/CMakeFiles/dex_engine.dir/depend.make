# Empty dependencies file for dex_engine.
# This may be replaced when dependencies are built.
