file(REMOVE_RECURSE
  "CMakeFiles/dex_engine.dir/executor.cc.o"
  "CMakeFiles/dex_engine.dir/executor.cc.o.d"
  "CMakeFiles/dex_engine.dir/expr.cc.o"
  "CMakeFiles/dex_engine.dir/expr.cc.o.d"
  "CMakeFiles/dex_engine.dir/logical_plan.cc.o"
  "CMakeFiles/dex_engine.dir/logical_plan.cc.o.d"
  "CMakeFiles/dex_engine.dir/optimizer.cc.o"
  "CMakeFiles/dex_engine.dir/optimizer.cc.o.d"
  "libdex_engine.a"
  "libdex_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
