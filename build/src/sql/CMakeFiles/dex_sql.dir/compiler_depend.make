# Empty compiler generated dependencies file for dex_sql.
# This may be replaced when dependencies are built.
