file(REMOVE_RECURSE
  "libdex_sql.a"
)
