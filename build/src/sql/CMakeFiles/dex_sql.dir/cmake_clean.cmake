file(REMOVE_RECURSE
  "CMakeFiles/dex_sql.dir/binder.cc.o"
  "CMakeFiles/dex_sql.dir/binder.cc.o.d"
  "CMakeFiles/dex_sql.dir/lexer.cc.o"
  "CMakeFiles/dex_sql.dir/lexer.cc.o.d"
  "CMakeFiles/dex_sql.dir/parser.cc.o"
  "CMakeFiles/dex_sql.dir/parser.cc.o.d"
  "libdex_sql.a"
  "libdex_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
