# Empty compiler generated dependencies file for dex_csvf.
# This may be replaced when dependencies are built.
