file(REMOVE_RECURSE
  "CMakeFiles/dex_csvf.dir/csv_format.cc.o"
  "CMakeFiles/dex_csvf.dir/csv_format.cc.o.d"
  "libdex_csvf.a"
  "libdex_csvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_csvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
