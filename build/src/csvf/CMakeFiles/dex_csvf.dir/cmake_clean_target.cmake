file(REMOVE_RECURSE
  "libdex_csvf.a"
)
