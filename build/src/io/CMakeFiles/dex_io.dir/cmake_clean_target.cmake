file(REMOVE_RECURSE
  "libdex_io.a"
)
