# Empty dependencies file for dex_io.
# This may be replaced when dependencies are built.
