file(REMOVE_RECURSE
  "CMakeFiles/dex_io.dir/file_io.cc.o"
  "CMakeFiles/dex_io.dir/file_io.cc.o.d"
  "CMakeFiles/dex_io.dir/sim_disk.cc.o"
  "CMakeFiles/dex_io.dir/sim_disk.cc.o.d"
  "libdex_io.a"
  "libdex_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
