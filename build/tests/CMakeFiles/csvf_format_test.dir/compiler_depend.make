# Empty compiler generated dependencies file for csvf_format_test.
# This may be replaced when dependencies are built.
