file(REMOVE_RECURSE
  "CMakeFiles/csvf_format_test.dir/csvf_format_test.cc.o"
  "CMakeFiles/csvf_format_test.dir/csvf_format_test.cc.o.d"
  "csvf_format_test"
  "csvf_format_test.pdb"
  "csvf_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csvf_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
