file(REMOVE_RECURSE
  "CMakeFiles/storage_hash_index_test.dir/storage_hash_index_test.cc.o"
  "CMakeFiles/storage_hash_index_test.dir/storage_hash_index_test.cc.o.d"
  "storage_hash_index_test"
  "storage_hash_index_test.pdb"
  "storage_hash_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_hash_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
