# Empty dependencies file for storage_hash_index_test.
# This may be replaced when dependencies are built.
