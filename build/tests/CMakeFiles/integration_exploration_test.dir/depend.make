# Empty dependencies file for integration_exploration_test.
# This may be replaced when dependencies are built.
