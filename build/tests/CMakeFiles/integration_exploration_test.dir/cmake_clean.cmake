file(REMOVE_RECURSE
  "CMakeFiles/integration_exploration_test.dir/integration_exploration_test.cc.o"
  "CMakeFiles/integration_exploration_test.dir/integration_exploration_test.cc.o.d"
  "integration_exploration_test"
  "integration_exploration_test.pdb"
  "integration_exploration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_exploration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
