file(REMOVE_RECURSE
  "CMakeFiles/mseed_steim_test.dir/mseed_steim_test.cc.o"
  "CMakeFiles/mseed_steim_test.dir/mseed_steim_test.cc.o.d"
  "mseed_steim_test"
  "mseed_steim_test.pdb"
  "mseed_steim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mseed_steim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
