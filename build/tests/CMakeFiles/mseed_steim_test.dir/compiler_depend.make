# Empty compiler generated dependencies file for mseed_steim_test.
# This may be replaced when dependencies are built.
