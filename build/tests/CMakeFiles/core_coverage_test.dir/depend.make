# Empty dependencies file for core_coverage_test.
# This may be replaced when dependencies are built.
