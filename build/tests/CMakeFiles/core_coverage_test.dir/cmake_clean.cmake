file(REMOVE_RECURSE
  "CMakeFiles/core_coverage_test.dir/core_coverage_test.cc.o"
  "CMakeFiles/core_coverage_test.dir/core_coverage_test.cc.o.d"
  "core_coverage_test"
  "core_coverage_test.pdb"
  "core_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
