file(REMOVE_RECURSE
  "CMakeFiles/common_string_test.dir/common_string_test.cc.o"
  "CMakeFiles/common_string_test.dir/common_string_test.cc.o.d"
  "common_string_test"
  "common_string_test.pdb"
  "common_string_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
