file(REMOVE_RECURSE
  "CMakeFiles/engine_large_input_test.dir/engine_large_input_test.cc.o"
  "CMakeFiles/engine_large_input_test.dir/engine_large_input_test.cc.o.d"
  "engine_large_input_test"
  "engine_large_input_test.pdb"
  "engine_large_input_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_large_input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
