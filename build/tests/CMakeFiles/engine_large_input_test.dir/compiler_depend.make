# Empty compiler generated dependencies file for engine_large_input_test.
# This may be replaced when dependencies are built.
