file(REMOVE_RECURSE
  "CMakeFiles/engine_optimizer_test.dir/engine_optimizer_test.cc.o"
  "CMakeFiles/engine_optimizer_test.dir/engine_optimizer_test.cc.o.d"
  "engine_optimizer_test"
  "engine_optimizer_test.pdb"
  "engine_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
