# Empty dependencies file for mseed_steim2_test.
# This may be replaced when dependencies are built.
