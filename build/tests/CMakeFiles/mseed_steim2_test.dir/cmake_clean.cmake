file(REMOVE_RECURSE
  "CMakeFiles/mseed_steim2_test.dir/mseed_steim2_test.cc.o"
  "CMakeFiles/mseed_steim2_test.dir/mseed_steim2_test.cc.o.d"
  "mseed_steim2_test"
  "mseed_steim2_test.pdb"
  "mseed_steim2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mseed_steim2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
