file(REMOVE_RECURSE
  "CMakeFiles/property_equivalence_test.dir/property_equivalence_test.cc.o"
  "CMakeFiles/property_equivalence_test.dir/property_equivalence_test.cc.o.d"
  "property_equivalence_test"
  "property_equivalence_test.pdb"
  "property_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
