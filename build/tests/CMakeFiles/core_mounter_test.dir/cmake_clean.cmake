file(REMOVE_RECURSE
  "CMakeFiles/core_mounter_test.dir/core_mounter_test.cc.o"
  "CMakeFiles/core_mounter_test.dir/core_mounter_test.cc.o.d"
  "core_mounter_test"
  "core_mounter_test.pdb"
  "core_mounter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mounter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
