# Empty dependencies file for core_mounter_test.
# This may be replaced when dependencies are built.
