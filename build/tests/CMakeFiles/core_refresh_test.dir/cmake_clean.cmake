file(REMOVE_RECURSE
  "CMakeFiles/core_refresh_test.dir/core_refresh_test.cc.o"
  "CMakeFiles/core_refresh_test.dir/core_refresh_test.cc.o.d"
  "core_refresh_test"
  "core_refresh_test.pdb"
  "core_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
