file(REMOVE_RECURSE
  "CMakeFiles/core_split_test.dir/core_split_test.cc.o"
  "CMakeFiles/core_split_test.dir/core_split_test.cc.o.d"
  "core_split_test"
  "core_split_test.pdb"
  "core_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
