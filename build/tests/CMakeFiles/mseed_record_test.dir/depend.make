# Empty dependencies file for mseed_record_test.
# This may be replaced when dependencies are built.
