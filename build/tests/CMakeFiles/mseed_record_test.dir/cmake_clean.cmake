file(REMOVE_RECURSE
  "CMakeFiles/mseed_record_test.dir/mseed_record_test.cc.o"
  "CMakeFiles/mseed_record_test.dir/mseed_record_test.cc.o.d"
  "mseed_record_test"
  "mseed_record_test.pdb"
  "mseed_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mseed_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
