file(REMOVE_RECURSE
  "CMakeFiles/io_file_io_test.dir/io_file_io_test.cc.o"
  "CMakeFiles/io_file_io_test.dir/io_file_io_test.cc.o.d"
  "io_file_io_test"
  "io_file_io_test.pdb"
  "io_file_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_file_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
