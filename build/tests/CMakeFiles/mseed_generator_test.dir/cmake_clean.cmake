file(REMOVE_RECURSE
  "CMakeFiles/mseed_generator_test.dir/mseed_generator_test.cc.o"
  "CMakeFiles/mseed_generator_test.dir/mseed_generator_test.cc.o.d"
  "mseed_generator_test"
  "mseed_generator_test.pdb"
  "mseed_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mseed_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
