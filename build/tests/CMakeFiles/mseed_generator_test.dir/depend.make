# Empty dependencies file for mseed_generator_test.
# This may be replaced when dependencies are built.
