# Empty compiler generated dependencies file for mseed_file_test.
# This may be replaced when dependencies are built.
