file(REMOVE_RECURSE
  "CMakeFiles/mseed_file_test.dir/mseed_file_test.cc.o"
  "CMakeFiles/mseed_file_test.dir/mseed_file_test.cc.o.d"
  "mseed_file_test"
  "mseed_file_test.pdb"
  "mseed_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mseed_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
