file(REMOVE_RECURSE
  "CMakeFiles/engine_topk_test.dir/engine_topk_test.cc.o"
  "CMakeFiles/engine_topk_test.dir/engine_topk_test.cc.o.d"
  "engine_topk_test"
  "engine_topk_test.pdb"
  "engine_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
