file(REMOVE_RECURSE
  "CMakeFiles/io_sim_disk_test.dir/io_sim_disk_test.cc.o"
  "CMakeFiles/io_sim_disk_test.dir/io_sim_disk_test.cc.o.d"
  "io_sim_disk_test"
  "io_sim_disk_test.pdb"
  "io_sim_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_sim_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
