file(REMOVE_RECURSE
  "CMakeFiles/sql_binder_test.dir/sql_binder_test.cc.o"
  "CMakeFiles/sql_binder_test.dir/sql_binder_test.cc.o.d"
  "sql_binder_test"
  "sql_binder_test.pdb"
  "sql_binder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_binder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
