# Empty dependencies file for bench_disk_ablation.
# This may be replaced when dependencies are built.
