file(REMOVE_RECURSE
  "CMakeFiles/bench_disk_ablation.dir/bench_disk_ablation.cpp.o"
  "CMakeFiles/bench_disk_ablation.dir/bench_disk_ablation.cpp.o.d"
  "bench_disk_ablation"
  "bench_disk_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
