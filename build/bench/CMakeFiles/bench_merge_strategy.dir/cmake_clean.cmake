file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_strategy.dir/bench_merge_strategy.cpp.o"
  "CMakeFiles/bench_merge_strategy.dir/bench_merge_strategy.cpp.o.d"
  "bench_merge_strategy"
  "bench_merge_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
