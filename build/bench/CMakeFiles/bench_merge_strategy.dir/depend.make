# Empty dependencies file for bench_merge_strategy.
# This may be replaced when dependencies are built.
