# Empty dependencies file for bench_informativeness.
# This may be replaced when dependencies are built.
