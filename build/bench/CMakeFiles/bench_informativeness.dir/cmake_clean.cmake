file(REMOVE_RECURSE
  "CMakeFiles/bench_informativeness.dir/bench_informativeness.cpp.o"
  "CMakeFiles/bench_informativeness.dir/bench_informativeness.cpp.o.d"
  "bench_informativeness"
  "bench_informativeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_informativeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
