file(REMOVE_RECURSE
  "CMakeFiles/bench_derived_metadata.dir/bench_derived_metadata.cpp.o"
  "CMakeFiles/bench_derived_metadata.dir/bench_derived_metadata.cpp.o.d"
  "bench_derived_metadata"
  "bench_derived_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_derived_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
