# Empty dependencies file for bench_derived_metadata.
# This may be replaced when dependencies are built.
