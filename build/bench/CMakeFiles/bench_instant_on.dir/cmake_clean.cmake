file(REMOVE_RECURSE
  "CMakeFiles/bench_instant_on.dir/bench_instant_on.cpp.o"
  "CMakeFiles/bench_instant_on.dir/bench_instant_on.cpp.o.d"
  "bench_instant_on"
  "bench_instant_on.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instant_on.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
