# Empty dependencies file for bench_instant_on.
# This may be replaced when dependencies are built.
